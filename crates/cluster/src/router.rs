//! The message plane: every cross-node transfer flows through a
//! [`Router`].
//!
//! The paper attributes most framework slowdowns to the communication
//! layer — buffering discipline, serialization overhead, batching
//! (Fig 6, Table 7, §6.1.3). Rather than let each engine hand-roll that
//! layer, graphmaze models it once, here, and the engines differ only in
//! the declarative [`RouterConfig`] their [`ExecProfile`] carries:
//!
//! * **flush policy** — when buffered bytes actually hit the wire:
//!   eagerly per send ([`FlushPolicy::Eager`], SociaLite before its
//!   network optimization), at the superstep barrier
//!   ([`FlushPolicy::Barrier`], Giraph and batched SociaLite), or when a
//!   per-destination buffer crosses a size threshold
//!   ([`FlushPolicy::Stream`], GraphLab-style streaming);
//! * **per-message overhead bytes** — heap cost of each buffered message
//!   (JVM object headers for Giraph/GPS/GraphX, 0 for C++ runtimes);
//! * **id compression** — delta/bitmap-encode destination-id payloads
//!   (the §6.1.1/§6.2 bitvector recommendation, [`crate::compress`]).
//!
//! # The packetization rule
//!
//! Historically each engine invented its own message-count heuristic
//! (`1 + bytes / (1 << 20)` here, `1.max(count / 1024)` there). The
//! router defines **one** rule, used everywhere: a flushed transfer of
//! `w` wire bytes costs `max(1, ceil(w / PACKET_BYTES))` messages — one
//! per started [`PACKET_BYTES`] packet, and at least one, because even
//! an empty control message pays a latency. See [`packets_for`].
//!
//! Flush policies never change *how many bytes* cross the wire — only
//! how they are batched into packets (and therefore how many per-message
//! latencies are paid). Byte totals are invariant under policy swaps;
//! that is what makes Table 7's before/after a pure profile change.
//!
//! Every transfer is charged to [`Sim`] with an explicit destination
//! ([`Sim::send_to`]), which records the per-(src, dst) communication
//! matrix reported in `RunReport::matrix`.

use graphmaze_graph::VertexId;
use graphmaze_metrics::Work;

use crate::compress::encode_best;
use crate::profile::ExecProfile;
use crate::sim::Sim;

/// Wire packet capacity, bytes (1 MiB — the transfer granularity all
/// engines' old heuristics gestured at).
pub const PACKET_BYTES: u64 = 1 << 20;

/// The packetization rule: a transfer of `wire_bytes` costs one message
/// per *started* packet of [`PACKET_BYTES`], and never fewer than one.
///
/// Applied to **unscaled** wire bytes: under `with_work_scale`
/// extrapolation the simulator grows transfer *sizes*, not counts, so
/// packet counts are computed before scaling (inside [`Sim::send_to`]
/// the scale then multiplies both).
#[inline]
pub fn packets_for(wire_bytes: u64) -> u64 {
    wire_bytes.div_ceil(PACKET_BYTES).max(1)
}

/// When buffered traffic actually hits the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Every [`Router::send`] goes straight to the wire as its own
    /// transfer (SociaLite before the §6.1.3 batching fix).
    Eager,
    /// Per-destination buffers accumulate until [`Router::flush`] at the
    /// superstep barrier (Giraph's whole-superstep buffering; batched
    /// SociaLite).
    Barrier,
    /// Like `Barrier`, but a (src, dst) buffer that crosses
    /// `threshold_bytes` is flushed immediately (GraphLab-style
    /// streaming in bounded chunks).
    Stream {
        /// Per-(src, dst) buffered wire bytes that trigger a flush.
        threshold_bytes: u64,
    },
}

/// Declarative communication behaviour of one framework, carried by
/// [`ExecProfile::router`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterConfig {
    /// Batching discipline.
    pub flush: FlushPolicy,
    /// Heap overhead per buffered message, bytes (JVM object headers).
    pub per_message_overhead_bytes: u64,
    /// Delta/bitmap-compress destination-id payloads ([`crate::compress`]).
    pub compress_ids: bool,
}

impl RouterConfig {
    /// Send-per-message, no overhead, no compression.
    pub const fn eager() -> Self {
        RouterConfig {
            flush: FlushPolicy::Eager,
            per_message_overhead_bytes: 0,
            compress_ids: false,
        }
    }

    /// Buffer until the barrier.
    pub const fn barrier() -> Self {
        RouterConfig {
            flush: FlushPolicy::Barrier,
            ..RouterConfig::eager()
        }
    }

    /// Stream in chunks of `threshold_bytes`.
    pub const fn streaming(threshold_bytes: u64) -> Self {
        RouterConfig {
            flush: FlushPolicy::Stream { threshold_bytes },
            ..RouterConfig::eager()
        }
    }

    /// Sets the per-buffered-message heap overhead.
    pub const fn with_overhead(mut self, bytes: u64) -> Self {
        self.per_message_overhead_bytes = bytes;
        self
    }

    /// Enables destination-id compression.
    pub const fn with_compression(mut self) -> Self {
        self.compress_ids = true;
        self
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig::eager()
    }
}

/// The message plane of one simulated run: owns per-(src, dst) pending
/// buffers and charges [`Sim`] (always via [`Sim::send_to`], so the
/// traffic matrix sees every byte) according to the flush policy.
///
/// The router is deliberately *not* stored inside [`Sim`]: engines own
/// one `Router` per run and pass the sim to each call, keeping `Sim` a
/// pure cost meter.
#[derive(Clone, Debug)]
pub struct Router {
    nodes: usize,
    cfg: RouterConfig,
    /// Pending (wire, raw) chunks per (src, dst), row-major. Buffered
    /// sends are kept as individual chunks — not pre-summed — so that on
    /// flush each chunk is charged to [`Sim`] separately and work-scale
    /// extrapolation rounds exactly as it would for unbuffered sends;
    /// only the *packet count* is computed on the merged total. This
    /// keeps byte totals bit-identical across flush policies.
    pending: Vec<Vec<(u64, u64)>>,
}

impl Router {
    /// A router configured from `profile.router`.
    pub fn new(nodes: usize, profile: &ExecProfile) -> Self {
        Router::with_config(nodes, profile.router)
    }

    /// A router with an explicit configuration (engines that let tests
    /// override individual knobs build the config themselves).
    pub fn with_config(nodes: usize, cfg: RouterConfig) -> Self {
        Router {
            nodes,
            cfg,
            pending: vec![Vec::new(); nodes * nodes],
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RouterConfig {
        self.cfg
    }

    /// Node count this router serves.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Routes `wire_bytes`/`raw_bytes` from `src` to `dst` under the
    /// flush policy. Local traffic (`src == dst`) and empty transfers
    /// never touch the wire.
    pub fn send(&mut self, sim: &mut Sim, src: usize, dst: usize, wire_bytes: u64, raw_bytes: u64) {
        if src == dst || (wire_bytes == 0 && raw_bytes == 0) {
            return;
        }
        match self.cfg.flush {
            FlushPolicy::Eager => self.transfer(sim, src, dst, wire_bytes, raw_bytes),
            FlushPolicy::Barrier => {
                self.pending[src * self.nodes + dst].push((wire_bytes, raw_bytes));
            }
            FlushPolicy::Stream { threshold_bytes } => {
                let p = &mut self.pending[src * self.nodes + dst];
                p.push((wire_bytes, raw_bytes));
                if p.iter().map(|c| c.0).sum::<u64>() >= threshold_bytes {
                    self.drain(sim, src, dst);
                }
            }
        }
    }

    /// Immediate transfer bypassing the flush policy — for control-plane
    /// traffic (aggregators, counters, convergence votes) that must not
    /// wait in a buffer.
    pub fn send_now(
        &mut self,
        sim: &mut Sim,
        src: usize,
        dst: usize,
        wire_bytes: u64,
        raw_bytes: u64,
    ) {
        if src == dst || (wire_bytes == 0 && raw_bytes == 0) {
            return;
        }
        self.transfer(sim, src, dst, wire_bytes, raw_bytes);
    }

    /// Splits `wire_total`/`raw_total` evenly across `dsts` (remainder
    /// bytes go to the first destination), preserving exact byte totals.
    /// Models one bulk operation fanned out to a peer group (a 2-D grid
    /// row/column broadcast, a gather's return path).
    pub fn scatter(
        &mut self,
        sim: &mut Sim,
        src: usize,
        dsts: &[usize],
        wire_total: u64,
        raw_total: u64,
    ) {
        debug_assert!(!dsts.contains(&src), "scatter peers must exclude src");
        if dsts.is_empty() {
            return;
        }
        let k = dsts.len() as u64;
        let (w_share, w_rem) = (wire_total / k, wire_total % k);
        let (r_share, r_rem) = (raw_total / k, raw_total % k);
        for (i, &dst) in dsts.iter().enumerate() {
            let extra = if i == 0 { (w_rem, r_rem) } else { (0, 0) };
            self.send(sim, src, dst, w_share + extra.0, r_share + extra.1);
        }
    }

    /// Ring allreduce: every node sends `bytes_per_node` to its
    /// successor (the Pregel aggregator / global counter pattern). A
    /// no-op on a single node.
    pub fn allreduce(&mut self, sim: &mut Sim, bytes_per_node: u64) {
        if self.nodes > 1 {
            for node in 0..self.nodes {
                self.send_now(
                    sim,
                    node,
                    (node + 1) % self.nodes,
                    bytes_per_node,
                    bytes_per_node,
                );
            }
        }
    }

    /// Flushes every pending (src, dst) buffer to the wire. Engines call
    /// this before each `Sim::end_step` so buffered bytes are charged to
    /// the step that produced them.
    pub fn flush(&mut self, sim: &mut Sim) {
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                self.drain(sim, src, dst);
            }
        }
    }

    /// True if any (src, dst) buffer holds unflushed bytes.
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(|p| !p.is_empty())
    }

    fn transfer(&mut self, sim: &mut Sim, src: usize, dst: usize, wire: u64, raw: u64) {
        sim.send_to(src, dst, wire, raw, packets_for(wire));
    }

    /// Puts one (src, dst) buffer on the wire: the packet count comes
    /// from the merged wire total (that is the batching win), but each
    /// chunk is charged separately so byte scaling rounds identically to
    /// eager per-send charging.
    fn drain(&mut self, sim: &mut Sim, src: usize, dst: usize) {
        let chunks = std::mem::take(&mut self.pending[src * self.nodes + dst]);
        if chunks.is_empty() {
            return;
        }
        let total_wire: u64 = chunks.iter().map(|c| c.0).sum();
        let mut msgs = packets_for(total_wire);
        for (w, r) in chunks {
            sim.send_to(src, dst, w, r, msgs);
            msgs = 0;
        }
    }
}

/// A vertex-message combiner: folds two messages for the same
/// destination vertex into one, or returns `None` to keep both
/// (non-combinable message kinds).
pub type Combiner<'a, M> = Option<&'a dyn Fn(&M, &M) -> Option<M>>;

/// Per-destination message buffering for vertex engines: collects
/// `(destination vertex, message)` pairs per destination *node*, then on
/// [`Mailbox::flush`] applies the combiner (local reduction), id
/// compression and per-message overhead accounting, routes the wire
/// bytes through the [`Router`], and delivers the surviving messages.
///
/// This absorbs what `vertex/engine.rs` used to do inline; the flush
/// sequence (emission charge → combine → compress → route → deliver) is
/// the GraphLab/Giraph send path of §3.1/§6.1.3.
#[derive(Debug)]
pub struct Mailbox<M> {
    node: usize,
    bufs: Vec<Vec<(VertexId, M)>>,
}

impl<M> Mailbox<M> {
    /// An empty mailbox on `node` of a `nodes`-node cluster.
    pub fn new(node: usize, nodes: usize) -> Self {
        Mailbox {
            node,
            bufs: (0..nodes).map(|_| Vec::new()).collect(),
        }
    }

    /// Buffers `msg` for vertex `to`, owned by `dest_node`.
    #[inline]
    pub fn post(&mut self, dest_node: usize, to: VertexId, msg: M) {
        self.bufs[dest_node].push((to, msg));
    }

    /// True if no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.bufs.iter().all(|b| b.is_empty())
    }

    /// Flushes all buffers: per destination node, charges the emission
    /// cost (`Work::random` per original message — the combiner streams
    /// and hashes everything it folds), applies `combine` when given,
    /// computes wire bytes (id-compressing remote payloads when the
    /// router is configured to), routes remote transfers, accounts
    /// per-message heap overhead, and hands every surviving message to
    /// `deliver`.
    ///
    /// Returns the bytes this node's vertex programs emitted (pre-combine
    /// payload plus buffering overhead) — the engine's `seq_bytes` share.
    pub fn flush(
        &mut self,
        router: &mut Router,
        sim: &mut Sim,
        universe: u64,
        message_bytes: impl Fn(&M) -> u64,
        combine: Combiner<'_, M>,
        mut deliver: impl FnMut(VertexId, M),
    ) -> u64 {
        let mut emitted = 0u64;
        for dest_node in 0..self.bufs.len() {
            let buf = &mut self.bufs[dest_node];
            if buf.is_empty() {
                continue;
            }
            // emission cost is paid per *original* message
            let pre_bytes: u64 = buf.iter().map(|(_, m)| message_bytes(m)).sum();
            let pre_count = buf.len() as u64;
            emitted += pre_bytes;
            sim.charge(self.node, Work::random(pre_count));
            if let Some(combine) = combine {
                buf.sort_by_key(|(d, _)| *d);
                let mut combined: Vec<(VertexId, M)> = Vec::with_capacity(buf.len());
                for (d, m) in buf.drain(..) {
                    match combined.last_mut() {
                        Some((ld, lm)) if *ld == d => {
                            if let Some(c) = combine(lm, &m) {
                                *lm = c;
                            } else {
                                combined.push((d, m));
                            }
                        }
                        _ => combined.push((d, m)),
                    }
                }
                *buf = combined;
            }
            let payload: u64 = buf.iter().map(|(_, m)| message_bytes(m)).sum();
            let count = buf.len() as u64;
            let raw = payload + count * 4;
            let wire = if router.config().compress_ids && dest_node != self.node {
                // really encode the destination ids (delta or bitmap,
                // whichever is smaller)
                let mut ids: Vec<VertexId> = buf.iter().map(|(d, _)| *d).collect();
                ids.sort_unstable();
                ids.dedup();
                let encoded = encode_best(&ids, universe);
                // duplicate dst ids (no combiner) still need a 1-byte
                // run marker each
                payload + encoded.len() as u64 + (count - ids.len() as u64)
            } else {
                raw
            };
            router.send(sim, self.node, dest_node, wire, raw);
            emitted += count * router.config().per_message_overhead_bytes;
            for (d, m) in buf.drain(..) {
                deliver(d, m);
            }
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::ClusterSpec;

    fn sim(nodes: usize) -> Sim {
        Sim::new(ClusterSpec::paper(nodes), ExecProfile::native())
    }

    #[test]
    fn packetization_rule() {
        assert_eq!(packets_for(0), 1);
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(PACKET_BYTES), 1);
        assert_eq!(packets_for(PACKET_BYTES + 1), 2);
        assert_eq!(packets_for(10 * PACKET_BYTES), 10);
    }

    #[test]
    fn eager_and_barrier_agree_on_bytes_not_packets() {
        let mut s1 = sim(2);
        let mut eager = Router::with_config(2, RouterConfig::eager());
        for _ in 0..3 {
            eager.send(&mut s1, 0, 1, 600_000, 600_000);
        }
        eager.flush(&mut s1);
        s1.end_step().unwrap();
        let r1 = s1.finish();

        let mut s2 = sim(2);
        let mut barrier = Router::with_config(2, RouterConfig::barrier());
        for _ in 0..3 {
            barrier.send(&mut s2, 0, 1, 600_000, 600_000);
        }
        assert!(barrier.has_pending());
        barrier.flush(&mut s2);
        assert!(!barrier.has_pending());
        s2.end_step().unwrap();
        let r2 = s2.finish();

        // byte totals are policy-invariant ...
        assert_eq!(r1.traffic.bytes_sent, r2.traffic.bytes_sent);
        assert_eq!(r1.matrix.bytes(0, 1), r2.matrix.bytes(0, 1));
        // ... but batching granularity is not: 3 sub-MiB transfers vs
        // one 1.8 MB transfer (2 packets)
        assert_eq!(r1.traffic.messages, 3);
        assert_eq!(r2.traffic.messages, 2);
    }

    #[test]
    fn stream_policy_flushes_at_threshold() {
        let mut s = sim(2);
        let mut router = Router::with_config(2, RouterConfig::streaming(1000));
        router.send(&mut s, 0, 1, 400, 400);
        assert!(router.has_pending());
        router.send(&mut s, 0, 1, 700, 700); // crosses 1000 → flushes 1100
        assert!(!router.has_pending());
        router.send(&mut s, 0, 1, 10, 10);
        router.flush(&mut s);
        s.end_step().unwrap();
        let r = s.finish();
        assert_eq!(r.traffic.bytes_sent, 1110);
        assert_eq!(r.traffic.messages, 2);
    }

    #[test]
    fn local_and_empty_sends_are_free() {
        let mut s = sim(2);
        let mut router = Router::with_config(2, RouterConfig::eager());
        router.send(&mut s, 0, 0, 1_000_000, 1_000_000); // local
        router.send(&mut s, 0, 1, 0, 0); // empty
        router.send_now(&mut s, 1, 1, 55, 55); // local control
        router.flush(&mut s);
        s.end_step().unwrap();
        let r = s.finish();
        assert_eq!(r.traffic.bytes_sent, 0);
        assert_eq!(r.traffic.messages, 0);
        assert!(r.matrix.is_empty());
    }

    #[test]
    fn scatter_preserves_exact_totals() {
        let mut s = sim(4);
        let mut router = Router::with_config(4, RouterConfig::eager());
        router.scatter(&mut s, 1, &[0, 2, 3], 1001, 902);
        s.end_step().unwrap();
        let r = s.finish();
        assert_eq!(r.matrix.row_bytes(1), 1001);
        assert_eq!(r.traffic.bytes_sent, 1001);
        // remainder lands on the first peer
        assert_eq!(r.matrix.bytes(1, 0), 333 + 2);
        assert_eq!(r.matrix.bytes(1, 2), 333);
        assert_eq!(r.matrix.bytes(1, 3), 333);
    }

    #[test]
    fn allreduce_is_a_ring() {
        let mut s = sim(3);
        let mut router = Router::with_config(3, RouterConfig::barrier());
        // control traffic bypasses the barrier buffers
        router.allreduce(&mut s, 8);
        assert!(!router.has_pending());
        s.end_step().unwrap();
        let r = s.finish();
        assert_eq!(r.traffic.bytes_sent, 24);
        assert_eq!(r.traffic.messages, 3);
        for n in 0..3 {
            assert_eq!(r.matrix.bytes(n, (n + 1) % 3), 8);
        }
    }

    #[test]
    fn mailbox_combines_compresses_and_routes() {
        // 10 messages for the same remote vertex: a sum-combiner folds
        // them into one 8-byte payload + one 4-byte id
        let mut s = sim(2);
        let mut router = Router::with_config(2, RouterConfig::eager());
        let mut mbox: Mailbox<u64> = Mailbox::new(0, 2);
        assert!(mbox.is_empty());
        for i in 0..10u64 {
            mbox.post(1, 7, i);
        }
        let combine = |a: &u64, b: &u64| Some(a + b);
        let mut delivered: Vec<(VertexId, u64)> = Vec::new();
        let emitted = mbox.flush(
            &mut router,
            &mut s,
            100,
            |_| 8,
            Some(&combine),
            |d, m| delivered.push((d, m)),
        );
        assert_eq!(delivered, vec![(7, (0..10).sum::<u64>())]);
        assert_eq!(emitted, 80, "emission cost counts pre-combine bytes");
        s.end_step().unwrap();
        let r = s.finish();
        assert_eq!(r.traffic.bytes_sent, 12, "8B payload + 4B id");
        assert_eq!(r.matrix.bytes(0, 1), 12);
    }

    #[test]
    fn mailbox_local_delivery_never_touches_the_wire() {
        let mut s = sim(2);
        let mut router = Router::with_config(2, RouterConfig::eager());
        let mut mbox: Mailbox<u32> = Mailbox::new(1, 2);
        mbox.post(1, 3, 42);
        let mut got = Vec::new();
        mbox.flush(
            &mut router,
            &mut s,
            10,
            |_| 4,
            None,
            |d, m| got.push((d, m)),
        );
        assert_eq!(got, vec![(3, 42)]);
        s.end_step().unwrap();
        assert_eq!(s.finish().traffic.bytes_sent, 0);
    }

    #[test]
    fn mailbox_id_compression_shrinks_dense_remote_payloads() {
        let mut s = sim(2);
        let mut router = Router::with_config(2, RouterConfig::eager().with_compression());
        let mut mbox: Mailbox<u32> = Mailbox::new(0, 2);
        for v in 0..1000u32 {
            mbox.post(1, v, 1);
        }
        mbox.flush(&mut router, &mut s, 1000, |_| 4, None, |_, _| {});
        s.end_step().unwrap();
        let r = s.finish();
        // raw would be 1000×(4B payload + 4B id); delta-coded ids are ~1B
        assert_eq!(r.traffic.bytes_uncompressed, 8000);
        assert!(
            r.traffic.bytes_sent < 5200,
            "ids should compress: {}",
            r.traffic.bytes_sent
        );
    }

    #[test]
    fn per_message_overhead_counts_into_emitted_bytes() {
        let mut s = sim(2);
        let mut router = Router::with_config(2, RouterConfig::barrier().with_overhead(48));
        let mut mbox: Mailbox<u32> = Mailbox::new(0, 2);
        mbox.post(1, 0, 9);
        mbox.post(1, 1, 9);
        let emitted = mbox.flush(&mut router, &mut s, 10, |_| 4, None, |_, _| {});
        assert_eq!(emitted, 2 * 4 + 2 * 48);
    }

    #[test]
    fn profile_construction_uses_the_profile_config() {
        let p = ExecProfile::giraph();
        let r = Router::new(4, &p);
        assert_eq!(r.config(), p.router);
        assert_eq!(r.nodes(), 4);
    }

    #[test]
    fn empty_lanes_flush_cleanly_under_link_faults() {
        use crate::faults::{with_faults, FaultPlan};
        use crate::sim::HEARTBEAT_WIRE_BYTES;
        let plan = FaultPlan::parse("seed=3,linkdrop=0.5").unwrap();
        let mut s = with_faults(plan, || sim(3));
        let mut router = Router::with_config(3, RouterConfig::barrier());
        assert!(!router.has_pending());
        router.flush(&mut s); // every lane empty: nothing reaches the wire
        s.end_step().unwrap();
        let r = s.finish();
        assert_eq!(r.retransmit.retransmits, 0);
        assert_eq!(r.retransmit.retransmitted_bytes, 0);
        // the only traffic is the two workers' heartbeats to node 0
        assert_eq!(r.traffic.bytes_sent, 2 * HEARTBEAT_WIRE_BYTES);
        assert_eq!(r.matrix.row_bytes(0), 0);
    }

    #[test]
    fn zero_byte_messages_stay_free_under_link_faults() {
        use crate::faults::{with_faults, FaultPlan};
        use crate::sim::HEARTBEAT_WIRE_BYTES;
        let plan = FaultPlan::parse("seed=3,linkdrop=1").unwrap();
        let mut s = with_faults(plan, || sim(2));
        let mut router = Router::with_config(2, RouterConfig::eager());
        router.send(&mut s, 0, 1, 0, 0);
        router.send_now(&mut s, 0, 1, 0, 0);
        router.flush(&mut s);
        s.end_step().unwrap();
        let r = s.finish();
        // empty transfers never enter the retransmit protocol, even at
        // drop probability 1
        assert_eq!(r.retransmit.retransmits, 0);
        assert_eq!(r.matrix.bytes(0, 1), 0);
        assert_eq!(r.traffic.bytes_sent, HEARTBEAT_WIRE_BYTES);
        assert!((r.retransmit.timeout_seconds - 0.0).abs() < 1e-15);
    }

    #[test]
    fn stream_policy_exactly_at_threshold_flushes_once_under_faults() {
        use crate::faults::{with_faults, FaultPlan, MAX_SEND_ATTEMPTS};
        use crate::sim::HEARTBEAT_WIRE_BYTES;
        let plan = FaultPlan::parse("seed=3,linkdrop=1").unwrap();
        let mut s = with_faults(plan, || sim(2));
        let mut router = Router::with_config(2, RouterConfig::streaming(1000));
        router.send(&mut s, 0, 1, 1000, 1000); // == threshold: immediate
        assert!(!router.has_pending());
        s.end_step().unwrap();
        let r = s.finish();
        // one transfer, retransmitted up to the attempt cap
        let resends = u64::from(MAX_SEND_ATTEMPTS - 1);
        assert_eq!(r.retransmit.retransmits, resends);
        assert_eq!(r.retransmit.retransmitted_bytes, resends * 1000);
        assert_eq!(
            r.traffic.bytes_sent,
            (resends + 1) * 1000 + HEARTBEAT_WIRE_BYTES
        );
        assert_eq!(r.matrix.bytes(0, 1), (resends + 1) * 1000);
    }

    #[test]
    fn combined_message_retransmits_as_one_transfer() {
        use crate::faults::{with_faults, FaultPlan, MAX_SEND_ATTEMPTS};
        let plan = FaultPlan::parse("seed=3,linkdrop=1").unwrap();
        let mut s = with_faults(plan, || sim(2));
        let mut router = Router::with_config(2, RouterConfig::eager());
        let mut mbox: Mailbox<u64> = Mailbox::new(0, 2);
        for i in 0..10u64 {
            mbox.post(1, 7, i);
        }
        let combine = |a: &u64, b: &u64| Some(a + b);
        let mut delivered: Vec<(VertexId, u64)> = Vec::new();
        mbox.flush(
            &mut router,
            &mut s,
            100,
            |_| 8,
            Some(&combine),
            |d, m| delivered.push((d, m)),
        );
        s.end_step().unwrap();
        let r = s.finish();
        // the combiner folded 10 messages into one 12-byte transfer; the
        // lossy link retransmits that *combined* message, not the 10
        // originals, and delivery still sees exactly one copy
        assert_eq!(delivered, vec![(7, (0..10).sum::<u64>())]);
        let resends = u64::from(MAX_SEND_ATTEMPTS - 1);
        assert_eq!(r.retransmit.retransmits, resends);
        assert_eq!(r.retransmit.retransmitted_bytes, resends * 12);
        assert_eq!(r.matrix.bytes(0, 1), (resends + 1) * 12);
    }
}
