//! Per-framework execution profiles.
//!
//! Every parameter here is a *mechanism named by the paper*, not a fitted
//! fudge factor:
//!
//! * `core_fraction` — Giraph "memory limitations restrict the number of
//!   workers ... to 4 (even though the number of cores per node is 24)",
//!   limiting utilization to ~16% (§5.4);
//! * `sw_prefetch` — native and Galois issue software prefetches (§6.1.1,
//!   §6.2); the managed/runtime frameworks do not;
//! * `overlap` — computation/communication overlap, worth 1.2–2× in
//!   native code (§6.1.1); GraphLab and native do it, Giraph's BSP
//!   buffering prevents it;
//! * `work_multiplier` — interpretive overhead of the programming model
//!   per primitive operation (JVM boxing, Datalog join machinery, vertex
//!   program dispatch), relative to native's 1.0;
//! * `per_step_overhead_s` — per-superstep coordination cost: Hadoop-level
//!   barrier + worker scheduling for Giraph, master barrier for the rest.

use crate::comm::CommLayer;
use crate::router::{RouterConfig, PACKET_BYTES};

/// How an engine executes on a node and communicates across nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecProfile {
    /// Engine name for reports.
    pub name: &'static str,
    /// Transport between nodes.
    pub comm: CommLayer,
    /// Fraction of a node's cores the engine actually uses.
    pub core_fraction: f64,
    /// Whether irregular loads are prefetched (raises MLP).
    pub sw_prefetch: bool,
    /// Whether communication overlaps computation within a step.
    pub overlap: bool,
    /// Per-operation overhead multiplier on all counted work.
    pub work_multiplier: f64,
    /// Fixed coordination cost per BSP step, seconds.
    pub per_step_overhead_s: f64,
    /// Whether the runtime writes superstep checkpoints and survives a
    /// node failure by rollback-and-replay (Giraph inherits this from
    /// Hadoop); engines without it fail-stop when a node dies.
    pub checkpoint_restart: bool,
    /// Message-plane behaviour (flush policy, per-message overhead, id
    /// compression) — consumed by [`crate::router::Router`], through
    /// which all cross-node traffic flows.
    pub router: RouterConfig,
    /// Base retransmission timeout: how long the transport waits for an
    /// ack before resending a lane transfer (doubles per retry —
    /// exponential backoff). Only exercised when the fault plan has
    /// link-level terms.
    pub retransmit_timeout_s: f64,
    /// Heartbeat period of the failure detector, seconds.
    pub heartbeat_period_s: f64,
    /// Consecutive missed beats before a silent peer is suspected dead
    /// (detection latency = `heartbeat_miss_beats × heartbeat_period_s`).
    pub heartbeat_miss_beats: u32,
    /// Whether the runtime speculatively re-executes straggler
    /// partitions on a buddy node, suppressing the duplicate result
    /// messages in the Mailbox combiner (Giraph's speculative execution
    /// inherited from Hadoop; GraphLab's dynamic rescheduling).
    pub speculative_reexec: bool,
}

impl ExecProfile {
    /// Hand-optimized native code: MPI, prefetch, overlap, no overhead.
    pub fn native() -> Self {
        ExecProfile {
            name: "native",
            comm: CommLayer::mpi(),
            core_fraction: 1.0,
            sw_prefetch: true,
            overlap: true,
            work_multiplier: 1.0,
            per_step_overhead_s: 50e-6,
            checkpoint_restart: false,
            router: RouterConfig::eager(),
            // MPI eager protocol: microsecond-scale ack turnaround
            retransmit_timeout_s: 200e-6,
            heartbeat_period_s: 1.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: false,
        }
    }

    /// CombBLAS: MPI (36 ranks/node), no prefetch hints, modest semiring
    /// dispatch overhead, no explicit overlap.
    pub fn combblas() -> Self {
        ExecProfile {
            name: "combblas",
            comm: CommLayer::mpi(),
            core_fraction: 0.75, // 36 MPI ranks on 48 HW threads
            sw_prefetch: false,
            overlap: false,
            work_multiplier: 1.6,
            per_step_overhead_s: 200e-6,
            checkpoint_restart: false,
            router: RouterConfig::eager(),
            retransmit_timeout_s: 200e-6,
            heartbeat_period_s: 1.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: false,
        }
    }

    /// GraphLab: C++ vertex programs over sockets, limited compression,
    /// overlap via async engine.
    pub fn graphlab() -> Self {
        ExecProfile {
            name: "graphlab",
            comm: CommLayer::socket(),
            core_fraction: 1.0,
            sw_prefetch: false,
            overlap: true,
            work_multiplier: 2.8,
            per_step_overhead_s: 500e-6,
            checkpoint_restart: false,
            router: RouterConfig::streaming(PACKET_BYTES),
            // socket transport: millisecond RTO, async engine reschedules
            // slow partitions on another node
            retransmit_timeout_s: 1e-3,
            heartbeat_period_s: 1.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: true,
        }
    }

    /// SociaLite after the paper's §6.1.3 network optimization
    /// (multi-socket + batching). This is the configuration used for the
    /// headline results.
    pub fn socialite() -> Self {
        ExecProfile {
            name: "socialite",
            comm: CommLayer::multi_socket(),
            core_fraction: 1.0,
            sw_prefetch: false,
            overlap: false,
            work_multiplier: 3.2, // Datalog join evaluation on the JVM
            per_step_overhead_s: 1e-3,
            checkpoint_restart: false,
            router: RouterConfig::barrier(),
            retransmit_timeout_s: 2e-3,
            heartbeat_period_s: 2.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: false,
        }
    }

    /// SociaLite *before* the network optimization (Table 7 "Before"):
    /// the slower transport **and** per-message eager sends instead of
    /// per-round batching — §6.1.3's fix is exactly this pair of knobs.
    pub fn socialite_unoptimized() -> Self {
        ExecProfile {
            comm: CommLayer::single_socket_unoptimized(),
            name: "socialite-unopt",
            router: RouterConfig::eager(),
            ..ExecProfile::socialite()
        }
    }

    /// Giraph: 4 Hadoop workers on 24 cores, Netty transport, whole-
    /// superstep buffering (no overlap), JVM object churn per message,
    /// heavy per-superstep coordination.
    pub fn giraph() -> Self {
        ExecProfile {
            name: "giraph",
            comm: CommLayer::netty(),
            core_fraction: 4.0 / 24.0,
            sw_prefetch: false,
            overlap: false,
            work_multiplier: 6.0, // boxed vertex/message objects, per-edge dispatch
            per_step_overhead_s: 0.9, // Hadoop superstep barrier + scheduling
            checkpoint_restart: true, // superstep checkpointing via HDFS
            // whole-superstep buffering with 48B of object header per
            // buffered message (vertex/giraph.rs MESSAGE_OBJECT_OVERHEAD)
            router: RouterConfig::barrier().with_overhead(48),
            // Netty channel timeouts and Hadoop-style heartbeating: slow
            // to detect loss, but speculative execution of stragglers
            retransmit_timeout_s: 50e-3,
            heartbeat_period_s: 5.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: true,
        }
    }

    /// GraphLab with the §6.2 roadmap applied: "incorporating MPI"
    /// (or at least multiple sockets), prefetching, and overlap — the
    /// paper predicts this brings GraphLab "within 5× of native".
    pub fn graphlab_improved() -> Self {
        ExecProfile {
            name: "graphlab+roadmap",
            comm: CommLayer::mpi(),
            sw_prefetch: true,
            // §6.2: "techniques like data compression (bitvectors) ...
            // should also help"
            router: RouterConfig::streaming(PACKET_BYTES).with_compression(),
            ..ExecProfile::graphlab()
        }
    }

    /// Giraph with the §6.2 roadmap applied: "boosting network bandwidth
    /// by 10x", "run more workers per node" (enabled by smaller message
    /// buffers), streaming instead of whole-superstep buffering. The
    /// JVM's per-operation cost and Hadoop's superstep barrier remain.
    pub fn giraph_improved() -> Self {
        ExecProfile {
            name: "giraph+roadmap",
            comm: CommLayer {
                name: "netty-tuned",
                peak_bw_bps: 4.5e9, // 10x the measured 0.45 GB/s
                latency_s: 50e-6,
                cpu_bytes_per_wire_byte: 1.0,
            },
            core_fraction: 1.0,       // 24 workers once buffers shrink
            per_step_overhead_s: 0.1, // barrier without per-superstep Hadoop setup
            // streaming instead of whole-superstep buffering, plus id
            // compression; JVM object headers remain
            router: RouterConfig::streaming(PACKET_BYTES)
                .with_overhead(48)
                .with_compression(),
            ..ExecProfile::giraph()
        }
    }

    /// SociaLite with the full §6.2 roadmap: the network fix (already in
    /// [`ExecProfile::socialite`]) plus message compression "will help
    /// SociaLite to achieve performance within 5× of native".
    pub fn socialite_improved() -> Self {
        ExecProfile {
            name: "socialite+roadmap",
            router: RouterConfig::barrier().with_compression(),
            ..ExecProfile::socialite()
        }
    }

    /// GPS (related work, §7): a Giraph-class JVM vertex runtime with
    /// Long Adjacency List Partitioning (hub splitting) and a leaner
    /// transport/runtime than Hadoop — the paper cites a 12× improvement
    /// over Giraph, "comparable to that of the frameworks studied (but
    /// much slower than native code)".
    pub fn gps() -> Self {
        ExecProfile {
            name: "gps",
            comm: CommLayer {
                name: "gps-mina",
                peak_bw_bps: 1.6e9,
                latency_s: 40e-6,
                cpu_bytes_per_wire_byte: 2.0,
            },
            core_fraction: 0.5, // threads per worker, no Hadoop worker cap
            sw_prefetch: false,
            overlap: false,
            work_multiplier: 5.0, // JVM vertex dispatch, lighter than Giraph's
            per_step_overhead_s: 80e-3, // own master, no Hadoop superstep setup
            checkpoint_restart: false,
            // leaner JVM runtime: streams message batches, smaller
            // per-message object overhead than Giraph's
            router: RouterConfig::streaming(PACKET_BYTES).with_overhead(24),
            retransmit_timeout_s: 10e-3,
            heartbeat_period_s: 2.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: false,
        }
    }

    /// GraphX (related work, §7): vertex programs compiled onto Spark's
    /// RDD machinery — the paper cites it "about 7× slower than GraphLab
    /// for pagerank", putting it "at the slower end of the spectrum".
    pub fn graphx() -> Self {
        ExecProfile {
            name: "graphx",
            comm: CommLayer::socket(),
            core_fraction: 1.0,
            sw_prefetch: false,
            overlap: false,
            work_multiplier: 2.8 * 7.0, // GraphLab's cost × Spark RDD overhead
            per_step_overhead_s: 120e-3, // Spark stage scheduling
            checkpoint_restart: false,
            // RDD shuffle: streamed blocks, boxed Scala message objects
            router: RouterConfig::streaming(PACKET_BYTES).with_overhead(32),
            // Spark: stage-level retry and speculation exist but operate
            // at task granularity; block retransmit is TCP-level
            retransmit_timeout_s: 100e-3,
            heartbeat_period_s: 5.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: false,
        }
    }

    /// GraphMat (the optimization-roadmap endpoint, PAPERS.md): vertex
    /// programs *compiled* onto a native SpMV backend — MPI transport,
    /// prefetch-friendly matrix loops, overlap, and only the thin
    /// gather/apply dispatch left of the abstraction ("within ~1.2× of
    /// native" is the ninja gap the GraphMat paper reports).
    pub fn graphmat() -> Self {
        ExecProfile {
            name: "graphmat",
            comm: CommLayer::mpi(),
            core_fraction: 1.0,
            sw_prefetch: true,
            overlap: true,
            work_multiplier: 1.25, // residual gather/apply dispatch per edge
            per_step_overhead_s: 100e-6, // SpMV epoch barrier, no JVM
            checkpoint_restart: false,
            router: RouterConfig::eager(),
            retransmit_timeout_s: 200e-6,
            heartbeat_period_s: 1.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: false,
        }
    }

    /// Galois: single-node task scheduler with prefetch-friendly loops;
    /// near-native per-op cost, tiny scheduling overhead.
    pub fn galois() -> Self {
        ExecProfile {
            name: "galois",
            comm: CommLayer::mpi(), // unused: single-node only
            core_fraction: 1.0,
            sw_prefetch: true,
            overlap: true,
            work_multiplier: 1.15,
            per_step_overhead_s: 100e-6,
            checkpoint_restart: false,
            router: RouterConfig::eager(), // unused: single-node only
            retransmit_timeout_s: 100e-6,
            heartbeat_period_s: 1.0,
            heartbeat_miss_beats: 3,
            speculative_reexec: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giraph_core_fraction_matches_section54() {
        let g = ExecProfile::giraph();
        // 4 workers / 24 cores ≈ 16% ceiling on CPU utilization
        assert!((g.core_fraction - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn native_is_the_reference() {
        let n = ExecProfile::native();
        assert_eq!(n.work_multiplier, 1.0);
        assert!(n.sw_prefetch && n.overlap);
    }

    #[test]
    fn socialite_optimization_only_touches_the_message_plane() {
        let before = ExecProfile::socialite_unoptimized();
        let after = ExecProfile::socialite();
        assert_eq!(before.work_multiplier, after.work_multiplier);
        assert!(before.comm.peak_bw_bps < after.comm.peak_bw_bps);
        // Table 7's fix is a pure profile swap: transport + flush policy
        assert_eq!(before.router.flush, crate::router::FlushPolicy::Eager);
        assert_eq!(after.router.flush, crate::router::FlushPolicy::Barrier);
    }

    #[test]
    fn router_configs_follow_the_paper_narrative() {
        use crate::router::FlushPolicy;
        // C++/MPI runtimes send eagerly with no object overhead
        for p in [
            ExecProfile::native(),
            ExecProfile::combblas(),
            ExecProfile::graphmat(),
            ExecProfile::galois(),
        ] {
            assert_eq!(p.router, RouterConfig::eager(), "{}", p.name);
        }
        // Giraph buffers whole supersteps, 48B object header per message
        let g = ExecProfile::giraph();
        assert_eq!(g.router.flush, FlushPolicy::Barrier);
        assert_eq!(g.router.per_message_overhead_bytes, 48);
        // roadmap variants add streaming and/or compression but never
        // wish away the JVM overhead
        let gi = ExecProfile::giraph_improved();
        assert!(matches!(gi.router.flush, FlushPolicy::Stream { .. }));
        assert_eq!(gi.router.per_message_overhead_bytes, 48);
        assert!(gi.router.compress_ids);
        assert!(ExecProfile::graphlab_improved().router.compress_ids);
        assert!(ExecProfile::socialite_improved().router.compress_ids);
        assert!(!ExecProfile::graphlab().router.compress_ids);
    }

    #[test]
    fn roadmap_profiles_strictly_improve() {
        let gl = (ExecProfile::graphlab(), ExecProfile::graphlab_improved());
        assert!(gl.1.comm.peak_bw_bps > gl.0.comm.peak_bw_bps);
        assert!(gl.1.sw_prefetch && !gl.0.sw_prefetch);
        let gi = (ExecProfile::giraph(), ExecProfile::giraph_improved());
        assert!((gi.1.comm.peak_bw_bps / gi.0.comm.peak_bw_bps - 10.0).abs() < 1e-9);
        assert!(gi.1.core_fraction > gi.0.core_fraction);
        assert!(gi.1.per_step_overhead_s < gi.0.per_step_overhead_s);
        // the JVM's per-operation cost is NOT wished away
        assert_eq!(gi.1.work_multiplier, gi.0.work_multiplier);
    }

    #[test]
    fn only_the_giraph_family_checkpoints() {
        assert!(ExecProfile::giraph().checkpoint_restart);
        assert!(ExecProfile::giraph_improved().checkpoint_restart);
        for p in [
            ExecProfile::native(),
            ExecProfile::combblas(),
            ExecProfile::graphlab(),
            ExecProfile::socialite(),
            ExecProfile::socialite_unoptimized(),
            ExecProfile::gps(),
            ExecProfile::graphx(),
            ExecProfile::graphmat(),
            ExecProfile::galois(),
        ] {
            assert!(!p.checkpoint_restart, "{} must fail-stop", p.name);
        }
    }

    #[test]
    fn resilience_knobs_are_sane_and_speculation_is_vertex_runtime_only() {
        let all = [
            ExecProfile::native(),
            ExecProfile::combblas(),
            ExecProfile::graphlab(),
            ExecProfile::socialite(),
            ExecProfile::socialite_unoptimized(),
            ExecProfile::giraph(),
            ExecProfile::graphlab_improved(),
            ExecProfile::giraph_improved(),
            ExecProfile::socialite_improved(),
            ExecProfile::gps(),
            ExecProfile::graphx(),
            ExecProfile::graphmat(),
            ExecProfile::galois(),
        ];
        for p in all {
            assert!(p.retransmit_timeout_s > 0.0, "{}", p.name);
            assert!(p.heartbeat_period_s > 0.0, "{}", p.name);
            assert!(p.heartbeat_miss_beats >= 1, "{}", p.name);
        }
        // speculative re-execution is a Giraph/GraphLab mechanism
        assert!(ExecProfile::giraph().speculative_reexec);
        assert!(ExecProfile::giraph_improved().speculative_reexec);
        assert!(ExecProfile::graphlab().speculative_reexec);
        assert!(ExecProfile::graphlab_improved().speculative_reexec);
        assert!(!ExecProfile::native().speculative_reexec);
        assert!(!ExecProfile::socialite().speculative_reexec);
        assert!(!ExecProfile::graphx().speculative_reexec);
        // a transport that detects loss slowly also beats slowly
        assert!(
            ExecProfile::giraph().retransmit_timeout_s > ExecProfile::native().retransmit_timeout_s
        );
    }

    #[test]
    fn overhead_ordering() {
        // Giraph pays orders of magnitude more per superstep than native.
        assert!(
            ExecProfile::giraph().per_step_overhead_s / ExecProfile::native().per_step_overhead_s
                > 1e3
        );
    }
}
