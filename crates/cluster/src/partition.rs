//! Graph partitioning schemes (§6.1.1 "Partitioning schemes").
//!
//! * [`Partition1D`] — vertex partitioning "so that each node has roughly
//!   the same number of edges" (§3.1): contiguous vertex ranges balanced
//!   by edge count. Used by native, GraphLab, SociaLite and Giraph.
//! * [`Partition2D`] — CombBLAS's edge partitioning: a √P × √P process
//!   grid over blocks of the adjacency matrix.
//! * [`hubs_to_replicate`] — GraphLab's "advanced partitioning scheme
//!   where some nodes with large degree are duplicated in multiple nodes"
//!   (§6.1.1).

use graphmaze_graph::csr::Csr;
use graphmaze_graph::VertexId;

/// 1-D contiguous vertex partition balanced by edge count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition1D {
    /// `bounds[i]..bounds[i+1]` are the vertices of node `i`.
    bounds: Vec<VertexId>,
}

impl Partition1D {
    /// Splits `0..num_vertices` into `nodes` contiguous ranges with nearly
    /// equal total degree, using the CSR offsets array (degree prefix sums).
    pub fn balanced_by_edges(csr: &Csr, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        let n = csr.num_vertices();
        let total = csr.num_edges();
        // Degenerate regimes used to collapse silently: with `nodes ≥ n`
        // (or an edgeless graph) every intermediate target rounds to
        // zero, all bounds stick at 0 and the *last* part ends up owning
        // the whole graph while the rest idle. Distribute one vertex per
        // part (resp. equal vertex ranges) instead, with the surplus
        // parts explicitly empty at the end — `empty_parts` names them.
        if nodes >= n {
            let bounds = (0..=nodes).map(|k| k.min(n) as VertexId).collect();
            return Partition1D { bounds };
        }
        if total == 0 {
            return Self::balanced_by_vertices(n, nodes);
        }
        let offsets = csr.offsets();
        let mut bounds = Vec::with_capacity(nodes + 1);
        bounds.push(0 as VertexId);
        for k in 1..nodes {
            let target = total * k as u64 / nodes as u64;
            // first vertex whose prefix-degree exceeds the target
            let idx = offsets.partition_point(|&o| o < target);
            let idx = idx.min(n) as VertexId;
            let last = *bounds.last().expect("non-empty");
            bounds.push(idx.max(last));
        }
        bounds.push(n as VertexId);
        Partition1D { bounds }
    }

    /// Splits `0..csr.num_vertices()` into `weights.len()` contiguous
    /// ranges whose *edge* shares are proportional to `weights` — the
    /// elastic repartitioning rule: a node with half the capacity weight
    /// owns half the edges. `balanced_by_edges` is the equal-weights
    /// special case (up to rounding of the cut targets).
    pub fn balanced_by_edges_weighted(csr: &Csr, weights: &[f64]) -> Self {
        let n = csr.num_vertices();
        let offsets = csr.offsets();
        let degrees: Vec<u64> = (0..n).map(|v| offsets[v + 1] - offsets[v]).collect();
        let bounds = weighted_bounds(&degrees, weights)
            .into_iter()
            .map(|b| b as VertexId)
            .collect();
        Partition1D { bounds }
    }

    /// Splits by equal vertex counts (the naive scheme, for ablation).
    pub fn balanced_by_vertices(num_vertices: usize, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        let per = num_vertices.div_ceil(nodes);
        let mut bounds = Vec::with_capacity(nodes + 1);
        for k in 0..=nodes {
            bounds.push(((k * per).min(num_vertices)) as VertexId);
        }
        Partition1D { bounds }
    }

    /// Number of parts.
    pub fn nodes(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Owner node of vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        // bounds is sorted; find the last bound <= v
        debug_assert!(v < *self.bounds.last().expect("non-empty") || self.bounds.len() == 1);
        match self.bounds.binary_search(&v) {
            Ok(mut i) => {
                // v may equal several identical bounds (empty parts); the
                // owning part is the one whose range starts at v and is
                // non-empty — step forward past empties.
                while i + 1 < self.bounds.len() - 1 && self.bounds[i + 1] == v {
                    i += 1;
                }
                i.min(self.nodes() - 1)
            }
            Err(i) => i - 1,
        }
    }

    /// Vertex range of node `i`.
    #[inline]
    pub fn range(&self, node: usize) -> std::ops::Range<VertexId> {
        self.bounds[node]..self.bounds[node + 1]
    }

    /// Number of vertices on node `i`.
    pub fn len(&self, node: usize) -> usize {
        (self.bounds[node + 1] - self.bounds[node]) as usize
    }

    /// True if node `i` owns no vertices.
    pub fn is_empty(&self, node: usize) -> bool {
        self.len(node) == 0
    }

    /// Sum of degrees (edge count) owned by node `i` under `csr`.
    pub fn edges_of(&self, csr: &Csr, node: usize) -> u64 {
        let r = self.range(node);
        csr.offsets()[r.end as usize] - csr.offsets()[r.start as usize]
    }

    /// Whether any part owns no vertices (guaranteed when there are more
    /// parts than vertices).
    pub fn has_empty_parts(&self) -> bool {
        (0..self.nodes()).any(|k| self.is_empty(k))
    }

    /// The parts that own no vertices, in index order. Empty parts are
    /// explicit zero-width ranges: they appear in `range`/`len`, and
    /// [`Partition1D::owner`] never resolves a vertex to one.
    pub fn empty_parts(&self) -> Vec<usize> {
        (0..self.nodes()).filter(|&k| self.is_empty(k)).collect()
    }
}

/// Splits items `0..loads.len()` into `weights.len()` contiguous parts
/// whose *load* shares are proportional to `weights`: cut `k` lands at
/// the first item whose load prefix reaches
/// `total_load · (w₀+…+w_k)/Σw`. This is the shared kernel behind
/// [`Partition1D::balanced_by_edges_weighted`] (items = vertices, loads
/// = degrees) and the simulator's elastic placement of logical
/// partitions onto heterogeneous physical nodes (items = logical
/// partitions, loads = their edge counts, weights = capacity weights).
///
/// Negative weights count as zero (an empty part); if all weights are
/// zero, or the total load is zero, items are split by count instead.
/// The returned bounds vector has `weights.len() + 1` monotone entries
/// starting at 0 and ending at `loads.len()` — parts may be empty, never
/// overlapping. Pure arithmetic on the inputs: deterministic on any
/// thread count.
pub fn weighted_bounds(loads: &[u64], weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one part");
    let parts = weights.len();
    let total_w: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    let mut prefix: Vec<u64> = Vec::with_capacity(loads.len() + 1);
    prefix.push(0);
    for &l in loads {
        prefix.push(prefix.last().expect("non-empty") + l);
    }
    if *prefix.last().expect("non-empty") == 0 {
        // zero total load: split by item count
        prefix = (0..=loads.len() as u64).collect();
    }
    let total = *prefix.last().expect("non-empty");
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0usize);
    let mut cum_w = 0.0;
    for (k, w) in weights.iter().enumerate().take(parts - 1) {
        cum_w += w.max(0.0);
        let target = if total_w > 0.0 {
            (total as f64 * (cum_w / total_w)).round() as u64
        } else {
            // all-zero weights: equal shares
            total * (k as u64 + 1) / parts as u64
        };
        let idx = prefix.partition_point(|&o| o < target).min(loads.len());
        let last = *bounds.last().expect("non-empty");
        bounds.push(idx.max(last));
    }
    bounds.push(loads.len());
    bounds
}

/// 2-D block partition over a `pr × pc` process grid (CombBLAS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition2D {
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
    /// Matrix dimension (vertex count).
    pub n: u64,
}

impl Partition2D {
    /// A square grid of `nodes` processes; `nodes` must be a perfect
    /// square (CombBLAS "requires the total number of processes to be a
    /// square", §4.3).
    pub fn square(nodes: usize, num_vertices: u64) -> Result<Self, String> {
        let side = (nodes as f64).sqrt().round() as usize;
        if side * side != nodes {
            return Err(format!(
                "CombBLAS requires a square process count, got {nodes}"
            ));
        }
        Ok(Partition2D {
            pr: side,
            pc: side,
            n: num_vertices,
        })
    }

    /// The most-square `pr × pc` grid with `pr · pc == nodes`
    /// (`pr ≤ pc`). Used when the runner must place CombBLAS on a
    /// non-square node count, as the paper does by adjusting process
    /// counts (§4.3).
    pub fn nearly_square(nodes: usize, num_vertices: u64) -> Self {
        assert!(nodes >= 1, "need at least one process");
        let mut pr = (nodes as f64).sqrt().floor() as usize;
        while pr > 1 && !nodes.is_multiple_of(pr) {
            pr -= 1;
        }
        Partition2D {
            pr,
            pc: nodes / pr,
            n: num_vertices,
        }
    }

    /// Rows per block (ceiling).
    #[inline]
    pub fn rows_per_block(&self) -> u64 {
        self.n.div_ceil(self.pr as u64)
    }

    /// Cols per block (ceiling).
    #[inline]
    pub fn cols_per_block(&self) -> u64 {
        self.n.div_ceil(self.pc as u64)
    }

    /// Owner process (grid-row-major) of matrix entry `(u, v)` — i.e. edge
    /// `u → v`.
    #[inline]
    pub fn owner(&self, u: VertexId, v: VertexId) -> usize {
        let br = (u64::from(u) / self.rows_per_block()) as usize;
        let bc = (u64::from(v) / self.cols_per_block()) as usize;
        br * self.pc + bc
    }

    /// Grid coordinates of process `p`.
    #[inline]
    pub fn coords(&self, p: usize) -> (usize, usize) {
        (p / self.pc, p % self.pc)
    }

    /// Process at grid coordinates `(r, c)` — the inverse of
    /// [`Partition2D::coords`].
    #[inline]
    pub fn node_at(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.pr && c < self.pc);
        r * self.pc + c
    }

    /// Total processes.
    pub fn nodes(&self) -> usize {
        self.pr * self.pc
    }
}

/// Returns the vertices whose degree is ≥ `factor`× the average degree —
/// the hubs GraphLab replicates across nodes to balance load.
pub fn hubs_to_replicate(csr: &Csr, factor: f64) -> Vec<VertexId> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let avg = csr.num_edges() as f64 / n as f64;
    let threshold = (avg * factor).max(1.0);
    (0..n as u32)
        .filter(|&v| f64::from(csr.degree(v)) >= threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        Csr::from_edges(u64::from(n), &edges)
    }

    #[test]
    fn one_d_by_edges_covers_all_vertices_disjointly() {
        let g = path_graph(100);
        let p = Partition1D::balanced_by_edges(&g, 7);
        assert_eq!(p.nodes(), 7);
        let mut seen = 0u32;
        for node in 0..7 {
            let r = p.range(node);
            assert_eq!(r.start, seen);
            seen = r.end;
        }
        assert_eq!(seen, 100);
        for v in 0..100u32 {
            let o = p.owner(v);
            assert!(
                p.range(o).contains(&v),
                "owner({v})={o} range {:?}",
                p.range(o)
            );
        }
    }

    #[test]
    fn one_d_balances_skewed_degrees() {
        // vertex 0 is a hub with 1000 edges; 1000 other vertices have 1 edge.
        let mut edges: Vec<(u32, u32)> = (1..=1000).map(|v| (0, v)).collect();
        edges.extend((1..=1000).map(|v| (v, 0)));
        let g = Csr::from_edges(1001, &edges);
        let p = Partition1D::balanced_by_edges(&g, 4);
        // node 0 should hold ~the hub only; its edge share near 1/4 of 2000
        let e0 = p.edges_of(&g, 0);
        assert!((500..=1100).contains(&e0), "hub node edges {e0}");
        // remaining nodes share the rest roughly evenly
        let total: u64 = (0..4).map(|k| p.edges_of(&g, k)).sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn one_d_by_vertices_even_ranges() {
        let p = Partition1D::balanced_by_vertices(10, 3);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..8);
        assert_eq!(p.range(2), 8..10);
        assert_eq!(p.owner(9), 2);
        assert_eq!(p.owner(0), 0);
    }

    #[test]
    fn one_d_single_node_owns_everything() {
        let g = path_graph(10);
        let p = Partition1D::balanced_by_edges(&g, 1);
        assert_eq!(p.range(0), 0..10);
        assert_eq!(p.owner(5), 0);
    }

    #[test]
    fn one_d_more_nodes_than_vertices() {
        let p = Partition1D::balanced_by_vertices(2, 5);
        let owners: Vec<usize> = (0..2u32).map(|v| p.owner(v)).collect();
        for (v, &o) in owners.iter().enumerate() {
            assert!(p.range(o).contains(&(v as u32)));
        }
        let covered: usize = (0..5).map(|k| p.len(k)).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn two_d_square_grid() {
        let p = Partition2D::square(4, 100).unwrap();
        assert_eq!((p.pr, p.pc), (2, 2));
        assert_eq!(p.rows_per_block(), 50);
        assert_eq!(p.owner(0, 0), 0);
        assert_eq!(p.owner(0, 99), 1);
        assert_eq!(p.owner(99, 0), 2);
        assert_eq!(p.owner(99, 99), 3);
        assert_eq!(p.coords(3), (1, 1));
    }

    #[test]
    fn two_d_rejects_non_square() {
        assert!(Partition2D::square(3, 10).is_err());
        assert!(Partition2D::square(9, 10).is_ok());
    }

    #[test]
    fn two_d_every_edge_has_one_owner() {
        let p = Partition2D::square(9, 30).unwrap();
        for u in 0..30u32 {
            for v in 0..30u32 {
                let o = p.owner(u, v);
                assert!(o < 9);
                let (r, c) = p.coords(o);
                assert_eq!(u64::from(u) / p.rows_per_block(), r as u64);
                assert_eq!(u64::from(v) / p.cols_per_block(), c as u64);
            }
        }
    }

    #[test]
    fn nearly_square_covers_all_node_counts() {
        for nodes in 1..=64 {
            let p = Partition2D::nearly_square(nodes, 100);
            assert_eq!(p.pr * p.pc, nodes, "nodes={nodes}");
            assert!(p.pr <= p.pc);
        }
        let p = Partition2D::nearly_square(8, 100);
        assert_eq!((p.pr, p.pc), (2, 4));
    }

    #[test]
    fn hubs_found_by_degree() {
        let mut edges: Vec<(u32, u32)> = (1..=20).map(|v| (0, v)).collect();
        edges.push((1, 2));
        let g = Csr::from_edges(21, &edges);
        let hubs = hubs_to_replicate(&g, 5.0);
        assert_eq!(hubs, vec![0]);
        assert!(hubs_to_replicate(&g, 0.1).len() >= 2);
    }

    #[test]
    fn hubs_empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert!(hubs_to_replicate(&g, 2.0).is_empty());
    }

    #[test]
    fn one_d_by_edges_more_nodes_than_vertices_distributes() {
        // 2 vertices, 1 edge, 5 nodes: every intermediate edge target
        // rounds to zero — the old code put *everything* on node 4.
        let g = path_graph(2);
        let p = Partition1D::balanced_by_edges(&g, 5);
        assert_eq!(p.nodes(), 5);
        assert_eq!(p.len(0), 1);
        assert_eq!(p.len(1), 1);
        assert_eq!(p.empty_parts(), vec![2, 3, 4]);
        assert!(p.has_empty_parts());
        // every vertex still has exactly one owner
        for v in 0..2u32 {
            assert!(p.range(p.owner(v)).contains(&v));
        }
        let covered: usize = (0..5).map(|k| p.len(k)).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn one_d_by_edges_nodes_equal_vertices() {
        let g = path_graph(4);
        let p = Partition1D::balanced_by_edges(&g, 4);
        for k in 0..4 {
            assert_eq!(p.len(k), 1, "part {k}");
        }
        assert!(!p.has_empty_parts());
        assert!(p.empty_parts().is_empty());
    }

    #[test]
    fn one_d_by_edges_edgeless_graph_splits_by_vertices() {
        let g = Csr::from_edges(10, &[]);
        let p = Partition1D::balanced_by_edges(&g, 3);
        let covered: usize = (0..3).map(|k| p.len(k)).sum();
        assert_eq!(covered, 10);
        // no part holds everything
        for k in 0..3 {
            assert!(p.len(k) <= 4, "part {k} has {}", p.len(k));
        }
    }

    #[test]
    fn dense_partitions_have_no_empty_parts() {
        let g = path_graph(100);
        let p = Partition1D::balanced_by_edges(&g, 7);
        assert!(!p.has_empty_parts());
    }

    #[test]
    fn weighted_bounds_equal_weights_balances() {
        let loads = vec![1u64; 12];
        let b = weighted_bounds(&loads, &[1.0, 1.0, 1.0]);
        assert_eq!(b, vec![0, 4, 8, 12]);
    }

    #[test]
    fn weighted_bounds_half_weight_gets_half_load() {
        // 3 parts, middle one at half capacity: shares 2:1:2
        let loads = vec![1u64; 10];
        let b = weighted_bounds(&loads, &[1.0, 0.5, 1.0]);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 10);
        let shares: Vec<usize> = (0..3).map(|k| b[k + 1] - b[k]).collect();
        assert_eq!(shares, vec![4, 2, 4]);
    }

    #[test]
    fn weighted_bounds_zero_weight_part_is_empty() {
        let loads = vec![5u64, 5, 5, 5];
        let b = weighted_bounds(&loads, &[1.0, 0.0, 1.0]);
        assert_eq!(b[1], b[2], "zero-weight part must be empty");
        assert_eq!(b[0], 0);
        assert_eq!(b[3], 4);
    }

    #[test]
    fn weighted_bounds_degenerate_inputs() {
        // all-zero weights: equal shares
        let b = weighted_bounds(&[1, 1, 1, 1], &[0.0, 0.0]);
        assert_eq!(b, vec![0, 2, 4]);
        // zero total load: split by count
        let b = weighted_bounds(&[0, 0, 0, 0], &[1.0, 1.0]);
        assert_eq!(b, vec![0, 2, 4]);
        // no items: all parts empty
        let b = weighted_bounds(&[], &[1.0, 1.0, 1.0]);
        assert_eq!(b, vec![0, 0, 0, 0]);
        // negative weight counts as zero
        let b = weighted_bounds(&[1, 1], &[-3.0, 1.0]);
        assert_eq!(b, vec![0, 0, 2]);
    }

    #[test]
    fn weighted_partition_matches_capacity_ratio() {
        // path graph: degrees nearly uniform, so edge shares track the
        // 2:1 capacity ratio
        let g = path_graph(99);
        let p = Partition1D::balanced_by_edges_weighted(&g, &[1.0, 0.5]);
        let (e0, e1) = (p.edges_of(&g, 0), p.edges_of(&g, 1));
        assert_eq!(e0 + e1, g.num_edges());
        let ratio = e0 as f64 / e1 as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }
}
