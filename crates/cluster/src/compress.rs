//! Message compression: delta + varint coding and bitmap coding of vertex
//! id sets.
//!
//! "The data communicated among nodes is the id's of destination vertices
//! of the edges traversed. Such data has been observed to be compressible
//! using techniques like bit-vectors and delta coding" (§6.1.1) — worth
//! 3.2× on BFS and 2.2× on PageRank traffic in the paper's native code.
//! Both codecs here are real encoders with exact round-trips; the
//! simulator charges the *encoded* sizes to the network.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphmaze_graph::VertexId;

/// Which codec a buffer used (first byte on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Raw little-endian u32 ids.
    Raw,
    /// Ascending deltas, LEB128 varints.
    DeltaVarint,
    /// Dense bitmap over the universe.
    Bitmap,
}

impl Encoding {
    fn tag(self) -> u8 {
        match self {
            Encoding::Raw => 0,
            Encoding::DeltaVarint => 1,
            Encoding::Bitmap => 2,
        }
    }

    fn from_tag(t: u8) -> Option<Encoding> {
        match t {
            0 => Some(Encoding::Raw),
            1 => Some(Encoding::DeltaVarint),
            2 => Some(Encoding::Bitmap),
            _ => None,
        }
    }
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Encodes a **sorted, deduplicated** id list with the requested codec.
/// Layout: `[tag u8][count varint][universe varint][payload]`.
pub fn encode_with(ids: &[VertexId], universe: u64, enc: Encoding) -> Bytes {
    debug_assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "ids must be sorted unique"
    );
    debug_assert!(ids
        .iter()
        .all(|&v| u64::from(v) < universe || universe == 0));
    let mut buf = BytesMut::new();
    buf.put_u8(enc.tag());
    put_varint(&mut buf, ids.len() as u64);
    put_varint(&mut buf, universe);
    match enc {
        Encoding::Raw => {
            for &v in ids {
                buf.put_u32_le(v);
            }
        }
        Encoding::DeltaVarint => {
            let mut prev = 0u64;
            for &v in ids {
                put_varint(&mut buf, u64::from(v) - prev);
                prev = u64::from(v);
            }
        }
        Encoding::Bitmap => {
            let words = universe.div_ceil(64);
            let mut bm = vec![0u64; words as usize];
            for &v in ids {
                bm[(v / 64) as usize] |= 1u64 << (v % 64);
            }
            for w in bm {
                buf.put_u64_le(w);
            }
        }
    }
    buf.freeze()
}

/// Encodes with whichever codec is smallest for this density.
///
/// ```
/// use graphmaze_cluster::compress::{decode, encode_best, raw_size};
/// let frontier: Vec<u32> = (0..10_000).step_by(3).collect();
/// let wire = encode_best(&frontier, 10_000);
/// assert!(wire.len() as u64 * 2 < raw_size(frontier.len())); // >2x smaller
/// assert_eq!(decode(&wire).unwrap(), frontier);              // lossless
/// ```
pub fn encode_best(ids: &[VertexId], universe: u64) -> Bytes {
    let raw_len = 1 + 10 + 10 + ids.len() * 4;
    let bitmap_len = 1 + 10 + 10 + (universe.div_ceil(64) * 8) as usize;
    // delta size is data-dependent; encode it and compare against the
    // cheap estimates, picking bitmap only when clearly denser.
    let delta = encode_with(ids, universe, Encoding::DeltaVarint);
    if bitmap_len < delta.len() && bitmap_len < raw_len {
        encode_with(ids, universe, Encoding::Bitmap)
    } else if delta.len() <= raw_len {
        delta
    } else {
        encode_with(ids, universe, Encoding::Raw)
    }
}

/// Decodes any buffer produced by [`encode_with`] / [`encode_best`].
pub fn decode(bytes: &Bytes) -> Option<Vec<VertexId>> {
    let mut buf = bytes.clone();
    if !buf.has_remaining() {
        return None;
    }
    let enc = Encoding::from_tag(buf.get_u8())?;
    let count = get_varint(&mut buf)? as usize;
    let universe = get_varint(&mut buf)?;
    let mut out = Vec::with_capacity(count);
    match enc {
        Encoding::Raw => {
            for _ in 0..count {
                if buf.remaining() < 4 {
                    return None;
                }
                out.push(buf.get_u32_le());
            }
        }
        Encoding::DeltaVarint => {
            let mut prev = 0u64;
            for _ in 0..count {
                prev += get_varint(&mut buf)?;
                out.push(VertexId::try_from(prev).ok()?);
            }
        }
        Encoding::Bitmap => {
            let words = universe.div_ceil(64) as usize;
            for w in 0..words {
                if buf.remaining() < 8 {
                    return None;
                }
                let mut word = buf.get_u64_le();
                while word != 0 {
                    let bit = word.trailing_zeros() as u64;
                    out.push((w as u64 * 64 + bit) as VertexId);
                    word &= word - 1;
                }
            }
            if out.len() != count {
                return None;
            }
        }
    }
    Some(out)
}

/// Uncompressed wire size of `n` ids (the 4-byte-per-id baseline the
/// paper's compression factors are measured against).
pub fn raw_size(n: usize) -> u64 {
    (n * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ids: &[u32], universe: u64, enc: Encoding) {
        let b = encode_with(ids, universe, enc);
        let back = decode(&b).expect("decodes");
        assert_eq!(back, ids, "{enc:?}");
    }

    #[test]
    fn all_codecs_round_trip() {
        let ids = vec![0u32, 1, 7, 63, 64, 100, 1023];
        for enc in [Encoding::Raw, Encoding::DeltaVarint, Encoding::Bitmap] {
            roundtrip(&ids, 1024, enc);
        }
    }

    #[test]
    fn empty_list_round_trips() {
        for enc in [Encoding::Raw, Encoding::DeltaVarint, Encoding::Bitmap] {
            roundtrip(&[], 100, enc);
        }
    }

    #[test]
    fn delta_beats_raw_on_dense_ascending_runs() {
        let ids: Vec<u32> = (1000..2000).collect();
        let raw = encode_with(&ids, 1 << 20, Encoding::Raw);
        let delta = encode_with(&ids, 1 << 20, Encoding::DeltaVarint);
        // deltas of 1 are single bytes: ~4x smaller than raw
        assert!(
            delta.len() * 3 < raw.len(),
            "delta {} raw {}",
            delta.len(),
            raw.len()
        );
    }

    #[test]
    fn bitmap_beats_delta_on_very_dense_sets() {
        let ids: Vec<u32> = (0..10_000).step_by(2).collect(); // 50% dense
        let bitmap = encode_with(&ids, 10_000, Encoding::Bitmap);
        let delta = encode_with(&ids, 10_000, Encoding::DeltaVarint);
        assert!(bitmap.len() < delta.len());
    }

    #[test]
    fn encode_best_picks_a_small_codec() {
        let sparse: Vec<u32> = vec![5, 100_000, 4_000_000];
        let best = encode_best(&sparse, 1 << 23);
        assert!(best.len() < raw_size(3) as usize + 21);
        assert_eq!(decode(&best).unwrap(), sparse);

        let dense: Vec<u32> = (0..4096).collect();
        let best = encode_best(&dense, 4096);
        assert_eq!(decode(&best).unwrap(), dense);
        assert!(
            best.len() <= 4096 / 8 + 24,
            "dense set should bitmap: {}",
            best.len()
        );
    }

    #[test]
    fn varint_edge_values() {
        let mut buf = BytesMut::new();
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            put_varint(&mut buf, v);
        }
        let mut b = buf.freeze();
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            assert_eq!(get_varint(&mut b), Some(v));
        }
        assert!(!b.has_remaining());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&Bytes::from_static(&[])).is_none());
        assert!(decode(&Bytes::from_static(&[9, 1, 1])).is_none());
        // truncated raw payload
        let b = encode_with(&[1, 2, 3], 10, Encoding::Raw);
        let truncated = b.slice(0..b.len() - 2);
        assert!(decode(&truncated).is_none());
    }

    /// Deterministic xorshift64* generator — property tests stay
    /// reproducible without pulling in an RNG crate.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    /// Draws a sorted, deduplicated id set of roughly `target` ids
    /// uniformly from `[0, universe)`.
    fn random_id_set(rng: &mut XorShift, universe: u64, target: usize) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..target)
            .map(|_| (rng.next() % universe) as u32)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Property: every codec round-trips every generated id set, and the
    /// encoded size respects the codec's documented wire layout bound
    /// (`tag 1B + count varint ≤10B + universe varint ≤10B + payload`).
    /// Note the header means `encode_with(Raw).len()` slightly *exceeds*
    /// the `raw_size(n) = 4n` baseline the paper measures against.
    #[test]
    fn prop_all_encodings_round_trip_with_size_bound() {
        let mut rng = XorShift(0x9e37_79b9_97f4_a7c5);
        for universe in [1u64, 64, 1000, 1 << 16, 1 << 22] {
            for target in [0usize, 1, 5, 100, 2000] {
                let ids = random_id_set(&mut rng, universe, target);
                let header_max = 1 + 10 + 10;
                for enc in [Encoding::Raw, Encoding::DeltaVarint, Encoding::Bitmap] {
                    let b = encode_with(&ids, universe, enc);
                    assert_eq!(
                        decode(&b).expect("decodes"),
                        ids,
                        "{enc:?} u={universe} n={}",
                        ids.len()
                    );
                    let payload_max = match enc {
                        Encoding::Raw => ids.len() * 4,
                        // each delta varint is at most 5 bytes for u32 gaps
                        Encoding::DeltaVarint => ids.len() * 5,
                        Encoding::Bitmap => (universe.div_ceil(64) * 8) as usize,
                    };
                    assert!(
                        b.len() <= header_max + payload_max,
                        "{enc:?} size {} exceeds bound {}",
                        b.len(),
                        header_max + payload_max
                    );
                }
            }
        }
    }

    /// Property: `encode_best` always round-trips and never produces a
    /// buffer larger than the worst explicit codec by more than the
    /// estimation slack (it compares cheap upper-bound estimates, so it
    /// must at least beat the raw estimate `1 + 10 + 10 + 4n`).
    #[test]
    fn prop_encode_best_round_trips_and_is_bounded() {
        let mut rng = XorShift(0xdead_beef_cafe_f00d);
        for universe in [16u64, 512, 100_000, 1 << 20] {
            for target in [0usize, 3, 50, 1000, 5000] {
                let ids = random_id_set(&mut rng, universe, target);
                let best = encode_best(&ids, universe);
                assert_eq!(decode(&best).expect("decodes"), ids);
                let raw_estimate = 1 + 10 + 10 + ids.len() * 4;
                assert!(
                    best.len() <= raw_estimate,
                    "best {} vs raw estimate {} (u={universe} n={})",
                    best.len(),
                    raw_estimate,
                    ids.len()
                );
            }
        }
    }

    #[test]
    fn compression_factor_on_bfs_like_traffic() {
        // A BFS frontier: clustered ascending ids — the paper reports ~3.2x
        // net benefit; the codec alone should compress well over 2x.
        let ids: Vec<u32> = (0..100_000u32).filter(|v| v % 3 != 0).collect();
        let best = encode_best(&ids, 100_000);
        let factor = raw_size(ids.len()) as f64 / best.len() as f64;
        assert!(factor > 2.0, "compression factor {factor}");
    }
}
