//! Seeded, deterministic fault injection for the simulator.
//!
//! The paper's multi-node analysis (Tables 6–7, Fig 5–6) repeatedly turns
//! on how frameworks behave when the cluster *misbehaves*: Giraph's
//! superstep checkpointing exists because nodes die mid-job, SociaLite's
//! network layer was rebuilt because stragglers and buffering stalls
//! dominated at 64 nodes, and two of the headline results are OOM kills.
//! A [`FaultPlan`] injects exactly those degradations — per-(node, step)
//! straggler slowdown, message drop with retransmit cost, transient
//! memory pressure, and whole-node failure at a chosen step — as *pure
//! functions of the plan seed*, so a faulted run is bit-reproducible:
//! same plan ⇒ same decisions ⇒ same simulated timeline, on any thread
//! count and in any execution order.
//!
//! Like the work scale (see [`crate::work_scale`]), the active plan is
//! communicated to [`Sim::new`] through a **thread-local** override
//! ([`with_faults`]), so sweep cells running concurrently each see only
//! their own plan. The `GRAPHMAZE_FAULTS` environment variable (same
//! `--faults` grammar) provides a process-wide default.
//!
//! [`Sim::new`]: crate::Sim::new

use std::cell::Cell;

use crate::hardware::NodeProfile;

/// A whole-node failure scheduled at a specific BSP step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeFailure {
    /// The node that dies.
    pub node: usize,
    /// Zero-based step index during which it dies (the failure fires
    /// while that step executes, *before* any checkpoint the step would
    /// have written).
    pub step: u32,
}

/// One degraded point-to-point link: every transfer from `src` to `dst`
/// takes `factor`× the healthy wire time (the excess shows up in the
/// timeline's `resilience` lane).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowLink {
    /// Sending node of the degraded link.
    pub src: usize,
    /// Receiving node of the degraded link.
    pub dst: usize,
    /// Wire-time multiplier (≥ 1).
    pub factor: f64,
}

/// Hard cap on transmissions per lane transfer (1 original + up to 15
/// retransmits), so even `linkdrop=1` terminates deterministically.
pub const MAX_SEND_ATTEMPTS: u32 = 16;

/// Hard cap on membership events of each kind (`join=`, `leave=`, `hw=`)
/// in one plan, so [`FaultPlan`] stays a fixed-size `Copy` value that
/// fits the thread-local override cell.
pub const MAX_MEMBERSHIP_EVENTS: usize = 4;

/// Largest node id a `join=`/`leave=`/`hw=` clause may name. Keeps the
/// simulator's physical-node arrays bounded no matter what the spec says.
pub const MAX_MEMBERSHIP_NODE: usize = 1024;

/// A scheduled cluster-membership change: node `node` joins or
/// gracefully leaves at the barrier *ending* step `step`. Joins
/// warm-start from the last checkpoint; leaves drain their mailbox at
/// the barrier (BSP guarantees it is empty there) and migrate their
/// state off before going away — unlike a `kill=`, nothing is lost and
/// no recovery protocol runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MembershipEvent {
    /// The physical node joining or leaving.
    pub node: usize,
    /// Zero-based step whose closing barrier processes the event.
    pub step: u32,
}

/// A heterogeneous hardware profile pinned to one physical node for the
/// whole run (`hw=NODE:PROFILE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwOverride {
    /// The node running degraded hardware.
    pub node: usize,
    /// Its profile.
    pub profile: NodeProfile,
}

/// A deterministic fault-injection plan, consulted by the simulator in
/// `charge`/`send`/`alloc`/`end_step`. Every decision is a hash of
/// `(seed, kind, node, sequence)` — no mutable RNG state — so decisions
/// are independent of call interleaving across threads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed feeding every per-event decision hash.
    pub seed: u64,
    /// Probability that a given (node, step) runs slow.
    pub straggler_prob: f64,
    /// Compute-time multiplier (≥ 1) applied on straggler (node, step)s.
    pub straggler_slowdown: f64,
    /// Probability that a `send` is dropped and must be retransmitted
    /// (doubling its wire/raw bytes and messages).
    pub drop_prob: f64,
    /// Probability that an `alloc` lands during transient memory pressure.
    pub mem_pressure_prob: f64,
    /// Phantom bytes (page cache, GC floor, neighbour process) competing
    /// with the allocation under pressure.
    pub mem_pressure_bytes: u64,
    /// Probability that one transmission attempt of a lane transfer is
    /// lost on the link and must be retransmitted after a timeout
    /// (ack/retransmit with exponential backoff; see `Sim::send_to`).
    pub link_drop_prob: f64,
    /// Probability that a delivered lane transfer is duplicated in
    /// flight (the duplicate's bytes are charged; duplicate *results*
    /// are suppressed by the Mailbox combiner).
    pub dup_prob: f64,
    /// Optional persistently degraded point-to-point link.
    pub slow_link: Option<SlowLink>,
    /// Optional whole-node failure.
    pub fail: Option<NodeFailure>,
    /// Superstep checkpoint interval K (every K steps) for engines with
    /// checkpoint/restart; 0 disables checkpointing.
    pub checkpoint_interval: u32,
    /// Nodes scheduled to join the cluster (`join=NODE@STEP`), processed
    /// before leaves at each barrier.
    pub joins: [Option<MembershipEvent>; MAX_MEMBERSHIP_EVENTS],
    /// Nodes scheduled to gracefully leave (`leave=NODE@STEP`).
    pub leaves: [Option<MembershipEvent>; MAX_MEMBERSHIP_EVENTS],
    /// Per-node hardware profiles (`hw=NODE:PROFILE`), in force for the
    /// whole run.
    pub hw: [Option<HwOverride>; MAX_MEMBERSHIP_EVENTS],
}

const KIND_STRAGGLER: u64 = 0x51;
const KIND_DROP: u64 = 0xD0;
const KIND_MEMPRESS: u64 = 0x3E;
const KIND_LINKDROP: u64 = 0x1D;
const KIND_DUP: u64 = 0xD2;

/// SplitMix64 finalizer — a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The fault-free plan (the default everywhere).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            drop_prob: 0.0,
            mem_pressure_prob: 0.0,
            mem_pressure_bytes: 0,
            link_drop_prob: 0.0,
            dup_prob: 0.0,
            slow_link: None,
            fail: None,
            checkpoint_interval: 0,
            joins: [None; MAX_MEMBERSHIP_EVENTS],
            leaves: [None; MAX_MEMBERSHIP_EVENTS],
            hw: [None; MAX_MEMBERSHIP_EVENTS],
        }
    }

    /// Whether any fault (or checkpointing, which has a cost even without
    /// failures) is configured.
    pub fn is_active(&self) -> bool {
        self.straggler_prob > 0.0
            || self.drop_prob > 0.0
            || self.mem_pressure_prob > 0.0
            || self.has_link_faults()
            || self.fail.is_some()
            || self.checkpoint_interval > 0
            || self.is_elastic()
    }

    /// Whether any link-level fault term is configured. This is the gate
    /// for the whole lossy-link machinery — ack/retransmit lanes, the
    /// heartbeat failure detector and speculative straggler re-execution
    /// only engage when it returns true, so plans without link terms keep
    /// bit-identical timelines with earlier schema versions.
    pub fn has_link_faults(&self) -> bool {
        self.link_drop_prob > 0.0 || self.dup_prob > 0.0 || self.slow_link.is_some()
    }

    /// Whether the plan schedules any membership change.
    pub fn has_membership(&self) -> bool {
        self.joins.iter().any(Option::is_some) || self.leaves.iter().any(Option::is_some)
    }

    /// Whether the plan pins any heterogeneous hardware profile.
    pub fn has_hw(&self) -> bool {
        self.hw.iter().any(Option::is_some)
    }

    /// Whether the elasticity machinery engages at all. This is the gate
    /// for logical→physical placement, weighted repartitioning and
    /// per-node hardware factors — plans without membership or `hw=`
    /// terms keep bit-identical timelines with earlier schema versions.
    pub fn is_elastic(&self) -> bool {
        self.has_membership() || self.has_hw()
    }

    /// Scheduled joins, in clause order.
    pub fn join_events(&self) -> impl Iterator<Item = MembershipEvent> + '_ {
        self.joins.iter().flatten().copied()
    }

    /// Scheduled graceful leaves, in clause order.
    pub fn leave_events(&self) -> impl Iterator<Item = MembershipEvent> + '_ {
        self.leaves.iter().flatten().copied()
    }

    /// Pinned hardware overrides, in clause order.
    pub fn hw_overrides(&self) -> impl Iterator<Item = HwOverride> + '_ {
        self.hw.iter().flatten().copied()
    }

    /// The hardware profile pinned to `node`, if any.
    pub fn hw_profile(&self, node: usize) -> Option<NodeProfile> {
        self.hw_overrides()
            .find(|h| h.node == node)
            .map(|h| h.profile)
    }

    /// The largest node id named by any membership or hardware clause —
    /// the simulator sizes its physical-node arrays to cover it.
    pub fn membership_max_node(&self) -> Option<usize> {
        self.join_events()
            .chain(self.leave_events())
            .map(|e| e.node)
            .chain(self.hw_overrides().map(|h| h.node))
            .max()
    }

    /// Uniform value in `[0, 1)` for one decision, a pure function of the
    /// plan seed and the event coordinates.
    #[inline]
    fn unit(&self, kind: u64, a: u64, b: u64) -> f64 {
        let h = mix64(mix64(mix64(self.seed ^ kind) ^ a) ^ b);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The compute-time multiplier for `(node, step)`: `Some(slowdown)`
    /// when the slot runs slow, `None` otherwise.
    #[inline]
    pub fn straggler_multiplier(&self, node: usize, step: u32) -> Option<f64> {
        if self.straggler_prob > 0.0
            && self.unit(KIND_STRAGGLER, node as u64, u64::from(step)) < self.straggler_prob
        {
            Some(self.straggler_slowdown.max(1.0))
        } else {
            None
        }
    }

    /// Whether `node`'s `seq`-th send is dropped (and retransmitted).
    #[inline]
    pub fn drops_send(&self, node: usize, seq: u64) -> bool {
        self.drop_prob > 0.0 && self.unit(KIND_DROP, node as u64, seq) < self.drop_prob
    }

    /// Whether `node`'s `seq`-th allocation lands under memory pressure.
    #[inline]
    pub fn mem_pressure_hits(&self, node: usize, seq: u64) -> bool {
        self.mem_pressure_prob > 0.0
            && self.unit(KIND_MEMPRESS, node as u64, seq) < self.mem_pressure_prob
    }

    /// Packs a directed link into one decision coordinate.
    #[inline]
    fn link_coord(src: usize, dst: usize) -> u64 {
        ((src as u64) << 32) | dst as u64
    }

    /// Whether `attempt` (0 = original transmission, 1.. = retransmits)
    /// of the `seq`-th transfer on link `src → dst` is lost in flight.
    ///
    /// Each attempt gets its own threshold test against one fixed hash,
    /// so raising `link_drop_prob` only turns more attempts into losses:
    /// the set of retransmission events grows monotonically and is
    /// identical at any `--jobs`.
    #[inline]
    pub fn link_drop_hits(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        debug_assert!(attempt < MAX_SEND_ATTEMPTS);
        self.link_drop_prob > 0.0
            && self.unit(
                KIND_LINKDROP,
                Self::link_coord(src, dst),
                (seq << 5) | u64::from(attempt),
            ) < self.link_drop_prob
    }

    /// Whether the `seq`-th transfer on link `src → dst` is duplicated in
    /// flight once it finally gets through.
    #[inline]
    pub fn duplicates_delivery(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.dup_prob > 0.0 && self.unit(KIND_DUP, Self::link_coord(src, dst), seq) < self.dup_prob
    }

    /// The wire-time multiplier for link `src → dst` when it is the
    /// configured slow link, `None` otherwise.
    #[inline]
    pub fn slow_link_factor(&self, src: usize, dst: usize) -> Option<f64> {
        self.slow_link
            .filter(|l| l.src == src && l.dst == dst)
            .map(|l| l.factor.max(1.0))
    }

    /// Canonical spec string: `"none"` for the inactive plan, else the
    /// same `key=value` grammar [`FaultPlan::parse`] accepts, so
    /// `parse(&plan.key()) == plan`. Used in journal lines and as the
    /// faults component of the sweep cell params hash.
    pub fn key(&self) -> String {
        if !self.is_active() {
            return "none".to_string();
        }
        let mut s = format!("seed={}", self.seed);
        if self.straggler_prob > 0.0 {
            s.push_str(&format!(
                ",straggler={:?}x{:?}",
                self.straggler_prob, self.straggler_slowdown
            ));
        }
        if self.drop_prob > 0.0 {
            s.push_str(&format!(",drop={:?}", self.drop_prob));
        }
        if self.link_drop_prob > 0.0 {
            s.push_str(&format!(",linkdrop={:?}", self.link_drop_prob));
        }
        if self.dup_prob > 0.0 {
            s.push_str(&format!(",dup={:?}", self.dup_prob));
        }
        if let Some(l) = self.slow_link {
            s.push_str(&format!(",slowlink={}-{}:{:?}", l.src, l.dst, l.factor));
        }
        if self.mem_pressure_prob > 0.0 {
            s.push_str(&format!(
                ",mempress={:?}:{}",
                self.mem_pressure_prob, self.mem_pressure_bytes
            ));
        }
        if let Some(f) = self.fail {
            s.push_str(&format!(",kill={}@{}", f.node, f.step));
        }
        for e in self.joins.iter().flatten() {
            s.push_str(&format!(",join={}@{}", e.node, e.step));
        }
        for e in self.leaves.iter().flatten() {
            s.push_str(&format!(",leave={}@{}", e.node, e.step));
        }
        for h in self.hw.iter().flatten() {
            s.push_str(&format!(",hw={}:{}", h.node, h.profile.name()));
        }
        if self.checkpoint_interval > 0 {
            s.push_str(&format!(",ckpt={}", self.checkpoint_interval));
        }
        s
    }

    /// Parses a `--faults` spec: comma-separated `key=value` clauses.
    ///
    /// ```text
    /// seed=7,straggler=0.1x4,drop=0.01,linkdrop=0.02,dup=0.01,slowlink=0-1:4,mempress=0.05:256M,kill=0@5,ckpt=4
    /// ```
    ///
    /// * `seed=N` — decision seed (default 0);
    /// * `straggler=PxM` — each (node, step) runs `M`× slower with
    ///   probability `P`;
    /// * `drop=P` — each send is dropped and retransmitted with
    ///   probability `P`;
    /// * `linkdrop=P` — each transmission attempt of a lane transfer is
    ///   lost with probability `P` and retransmitted after a
    ///   deterministic exponential-backoff timeout;
    /// * `dup=P` — each delivered lane transfer is duplicated in flight
    ///   with probability `P`;
    /// * `slowlink=SRC-DST:X` — transfers on the `SRC → DST` link take
    ///   `X`× (≥ 1) the healthy wire time;
    /// * `mempress=P:BYTES` — each allocation contends with `BYTES`
    ///   phantom bytes with probability `P` (suffixes `K`/`M`/`G`);
    /// * `kill=NODE@STEP` — node `NODE` dies during step `STEP`;
    /// * `join=NODE@STEP` — node `NODE` joins the cluster at the barrier
    ///   ending step `STEP`, warm-starting from the last checkpoint;
    /// * `leave=NODE@STEP` — node `NODE` gracefully leaves at the
    ///   barrier ending step `STEP`: mailbox drained, state migrated
    ///   off (distinct from `kill`, which loses state and triggers
    ///   recovery);
    /// * `hw=NODE:PROFILE` — node `NODE` runs the named hardware profile
    ///   (`standard`, `oldgen`, `slownic`) for the whole run;
    /// * `ckpt=K` — checkpoint every `K` steps (checkpoint/restart
    ///   engines only).
    ///
    /// `join`/`leave`/`hw` may repeat (up to [`MAX_MEMBERSHIP_EVENTS`]
    /// each), but at most once per node, and conflicting plans — a
    /// `leave` of a node that is also `kill`ed, a node leaving before it
    /// joins, or `leave=0` (node 0 coordinates barriers) — are rejected.
    ///
    /// `"none"` or the empty string yield [`FaultPlan::none`].
    ///
    /// Out-of-range values and duplicate keys are rejected with an error
    /// whose caret line points at the offending span:
    ///
    /// ```text
    /// probability `1.5` must be in [0, 1]
    ///   seed=1,drop=1.5
    ///               ^^^
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        let mut plan = FaultPlan::none();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        let mut seen: Vec<&str> = Vec::new();
        // Spans of `leave=` clauses, kept for cross-clause validation
        // after the loop (the conflicting `kill=`/`join=` may parse
        // later).
        let mut leave_spans: Vec<(MembershipEvent, usize, usize)> = Vec::new();
        let mut offset = 0usize;
        for clause in spec.split(',') {
            let clause_at = offset;
            offset += clause.len() + 1;
            let (k, v) = clause.split_once('=').ok_or_else(|| {
                span_err(
                    spec,
                    clause_at,
                    clause.len(),
                    format!("fault clause `{clause}` is not key=value"),
                )
            })?;
            let key = k.trim();
            let v_at = clause_at + k.len() + 1;
            // join/leave/hw may repeat (per-node uniqueness is checked
            // where they are pushed); everything else at most once.
            if seen.contains(&key) && !matches!(key, "join" | "leave" | "hw") {
                return Err(span_err(
                    spec,
                    clause_at,
                    clause.len(),
                    format!("duplicate fault clause `{key}`"),
                ));
            }
            seen.push(key);
            match key {
                "seed" => {
                    plan.seed = v
                        .parse()
                        .map_err(|_| span_err(spec, v_at, v.len(), format!("bad seed `{v}`")))?;
                }
                "straggler" => {
                    let (p, m) = v.split_once('x').ok_or_else(|| {
                        span_err(
                            spec,
                            v_at,
                            v.len(),
                            format!("straggler `{v}` is not PROBxMULT"),
                        )
                    })?;
                    plan.straggler_prob = parse_prob(spec, v_at, p)?;
                    plan.straggler_slowdown = m
                        .parse::<f64>()
                        .ok()
                        .filter(|&m| m.is_finite() && m >= 1.0)
                        .ok_or_else(|| {
                            span_err(
                                spec,
                                v_at + p.len() + 1,
                                m.len(),
                                format!("straggler multiplier `{m}` must be ≥ 1"),
                            )
                        })?;
                }
                "drop" => plan.drop_prob = parse_prob(spec, v_at, v)?,
                "linkdrop" => plan.link_drop_prob = parse_prob(spec, v_at, v)?,
                "dup" => plan.dup_prob = parse_prob(spec, v_at, v)?,
                "slowlink" => {
                    let parsed = v.split_once(':').and_then(|(link, x)| {
                        let (s, d) = link.split_once('-')?;
                        Some(SlowLink {
                            src: s.parse().ok()?,
                            dst: d.parse().ok()?,
                            factor: x
                                .parse::<f64>()
                                .ok()
                                .filter(|&f| f.is_finite() && f >= 1.0)?,
                        })
                    });
                    plan.slow_link = Some(parsed.filter(|l| l.src != l.dst).ok_or_else(|| {
                        span_err(
                            spec,
                            v_at,
                            v.len(),
                            format!("slowlink `{v}` is not SRC-DST:X with SRC ≠ DST and X ≥ 1"),
                        )
                    })?);
                }
                "mempress" => {
                    let (p, b) = v.split_once(':').ok_or_else(|| {
                        span_err(
                            spec,
                            v_at,
                            v.len(),
                            format!("mempress `{v}` is not PROB:BYTES"),
                        )
                    })?;
                    plan.mem_pressure_prob = parse_prob(spec, v_at, p)?;
                    plan.mem_pressure_bytes = parse_bytes(b)
                        .map_err(|e| span_err(spec, v_at + p.len() + 1, b.len(), e))?;
                }
                "kill" => {
                    let (n, s) = v.split_once('@').ok_or_else(|| {
                        span_err(spec, v_at, v.len(), format!("kill `{v}` is not NODE@STEP"))
                    })?;
                    plan.fail = Some(NodeFailure {
                        node: n.parse().map_err(|_| {
                            span_err(spec, v_at, n.len(), format!("bad kill node `{n}`"))
                        })?,
                        step: s.parse().map_err(|_| {
                            span_err(
                                spec,
                                v_at + n.len() + 1,
                                s.len(),
                                format!("bad kill step `{s}`"),
                            )
                        })?,
                    });
                }
                "join" | "leave" => {
                    let ev = parse_node_step(spec, v_at, v, key)?;
                    if key == "leave" && ev.node == 0 {
                        return Err(span_err(
                            spec,
                            v_at,
                            v.len(),
                            "node 0 coordinates barriers and cannot leave".to_string(),
                        ));
                    }
                    let arr = if key == "join" {
                        &mut plan.joins
                    } else {
                        &mut plan.leaves
                    };
                    if arr.iter().flatten().any(|e| e.node == ev.node) {
                        return Err(span_err(
                            spec,
                            clause_at,
                            clause.len(),
                            format!("node {} already has a `{key}` event", ev.node),
                        ));
                    }
                    match arr.iter_mut().find(|slot| slot.is_none()) {
                        Some(slot) => *slot = Some(ev),
                        None => {
                            return Err(span_err(
                                spec,
                                clause_at,
                                clause.len(),
                                format!("at most {MAX_MEMBERSHIP_EVENTS} `{key}` events per plan"),
                            ))
                        }
                    }
                    if key == "leave" {
                        leave_spans.push((ev, clause_at, clause.len()));
                    }
                }
                "hw" => {
                    let (n, p) = v.split_once(':').ok_or_else(|| {
                        span_err(spec, v_at, v.len(), format!("hw `{v}` is not NODE:PROFILE"))
                    })?;
                    let node: usize = n
                        .parse()
                        .map_err(|_| span_err(spec, v_at, n.len(), format!("bad hw node `{n}`")))?;
                    if node > MAX_MEMBERSHIP_NODE {
                        return Err(span_err(
                            spec,
                            v_at,
                            n.len(),
                            format!("hw node `{n}` is out of range (max {MAX_MEMBERSHIP_NODE})"),
                        ));
                    }
                    let profile = NodeProfile::parse(p.trim()).ok_or_else(|| {
                        span_err(
                            spec,
                            v_at + n.len() + 1,
                            p.len(),
                            format!("unknown hardware profile `{p}` (standard, oldgen, slownic)"),
                        )
                    })?;
                    if plan.hw.iter().flatten().any(|h| h.node == node) {
                        return Err(span_err(
                            spec,
                            clause_at,
                            clause.len(),
                            format!("node {node} already has a `hw` profile"),
                        ));
                    }
                    match plan.hw.iter_mut().find(|slot| slot.is_none()) {
                        Some(slot) => *slot = Some(HwOverride { node, profile }),
                        None => {
                            return Err(span_err(
                                spec,
                                clause_at,
                                clause.len(),
                                format!("at most {MAX_MEMBERSHIP_EVENTS} `hw` profiles per plan"),
                            ))
                        }
                    }
                }
                "ckpt" => {
                    plan.checkpoint_interval = v.parse().map_err(|_| {
                        span_err(spec, v_at, v.len(), format!("bad ckpt interval `{v}`"))
                    })?;
                }
                other => {
                    return Err(span_err(
                        spec,
                        clause_at,
                        k.len(),
                        format!("unknown fault clause `{other}`"),
                    ))
                }
            }
        }
        // Cross-clause conflicts: a `leave` is a graceful departure and
        // cannot coexist with a `kill` of the same node, and a node that
        // both joins and leaves must join strictly first.
        for (ev, at, len) in &leave_spans {
            if plan.fail.is_some_and(|f| f.node == ev.node) {
                return Err(span_err(
                    spec,
                    *at,
                    *len,
                    format!("node {} cannot both `leave` and be `kill`ed", ev.node),
                ));
            }
            if plan
                .join_events()
                .any(|j| j.node == ev.node && j.step >= ev.step)
            {
                return Err(span_err(
                    spec,
                    *at,
                    *len,
                    format!("node {} must join strictly before it leaves", ev.node),
                ));
            }
        }
        Ok(plan)
    }
}

/// Formats a parse error with a caret line pointing at the offending
/// span of the spec. Shared by every spec-string parser in the repo
/// (fault plans, serve requests, `--frameworks` filters) so all of
/// them fail with the same shape of message.
pub fn span_err(spec: &str, at: usize, len: usize, msg: String) -> String {
    format!(
        "{msg}\n  {spec}\n  {}{}",
        " ".repeat(at),
        "^".repeat(len.max(1))
    )
}

/// Parses a `NODE@STEP` membership value with spans on each half and a
/// range check on the node id.
fn parse_node_step(
    spec: &str,
    v_at: usize,
    v: &str,
    kind: &str,
) -> Result<MembershipEvent, String> {
    let (n, s) = v.split_once('@').ok_or_else(|| {
        span_err(
            spec,
            v_at,
            v.len(),
            format!("{kind} `{v}` is not NODE@STEP"),
        )
    })?;
    let node: usize = n
        .parse()
        .map_err(|_| span_err(spec, v_at, n.len(), format!("bad {kind} node `{n}`")))?;
    if node > MAX_MEMBERSHIP_NODE {
        return Err(span_err(
            spec,
            v_at,
            n.len(),
            format!("{kind} node `{n}` is out of range (max {MAX_MEMBERSHIP_NODE})"),
        ));
    }
    let step: u32 = s.parse().map_err(|_| {
        span_err(
            spec,
            v_at + n.len() + 1,
            s.len(),
            format!("bad {kind} step `{s}`"),
        )
    })?;
    Ok(MembershipEvent { node, step })
}

fn parse_prob(spec: &str, at: usize, s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .ok()
        .filter(|p| p.is_finite() && (0.0..=1.0).contains(p))
        .ok_or_else(|| {
            span_err(
                spec,
                at,
                s.len(),
                format!("probability `{s}` must be in [0, 1]"),
            )
        })
}

fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1u64 << 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n.saturating_mul(mult))
        .map_err(|_| format!("bad byte count `{s}`"))
}

thread_local! {
    static OVERRIDE: Cell<Option<FaultPlan>> = const { Cell::new(None) };
}

/// The fault plan in effect on this thread: the innermost [`with_faults`]
/// override if any, else the `GRAPHMAZE_FAULTS` environment variable
/// (ignored if unparsable), else [`FaultPlan::none`].
pub fn current_faults() -> FaultPlan {
    match OVERRIDE.with(Cell::get) {
        Some(p) => p,
        None => std::env::var("GRAPHMAZE_FAULTS")
            .ok()
            .and_then(|s| FaultPlan::parse(&s).ok())
            .unwrap_or_else(FaultPlan::none),
    }
}

/// Restores the previous thread-local plan when dropped — including
/// during unwinding, so a panicking sweep cell cannot leak its faults
/// into the next cell run on the same worker thread.
pub struct FaultGuard {
    prev: Option<FaultPlan>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Installs a thread-local fault-plan override and returns the guard
/// that undoes it.
pub fn set_faults(plan: FaultPlan) -> FaultGuard {
    let prev = OVERRIDE.with(|c| c.replace(Some(plan)));
    FaultGuard { prev }
}

/// Runs `f` under fault plan `plan`, restoring the previous plan
/// afterwards (even if `f` panics). Overrides nest.
pub fn with_faults<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    let _guard = set_faults(plan);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_keys_as_none() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.key(), "none");
        assert!(p.straggler_multiplier(0, 0).is_none());
        assert!(!p.drops_send(0, 0));
        assert!(!p.mem_pressure_hits(0, 0));
    }

    #[test]
    fn parse_full_spec_round_trips_through_key() {
        let spec = "seed=7,straggler=0.1x4.0,drop=0.01,mempress=0.05:268435456,kill=0@5,ckpt=4";
        let p = FaultPlan::parse(spec).unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.straggler_prob, 0.1);
        assert_eq!(p.straggler_slowdown, 4.0);
        assert_eq!(p.drop_prob, 0.01);
        assert_eq!(p.mem_pressure_bytes, 256 << 20);
        assert_eq!(p.fail, Some(NodeFailure { node: 0, step: 5 }));
        assert_eq!(p.checkpoint_interval, 4);
        assert_eq!(FaultPlan::parse(&p.key()).unwrap(), p);
    }

    #[test]
    fn parse_byte_suffixes() {
        let p = FaultPlan::parse("mempress=1:256M").unwrap();
        assert_eq!(p.mem_pressure_bytes, 256 << 20);
        assert_eq!(
            FaultPlan::parse("mempress=1:4G")
                .unwrap()
                .mem_pressure_bytes,
            4 << 30
        );
        assert_eq!(
            FaultPlan::parse("mempress=1:16K")
                .unwrap()
                .mem_pressure_bytes,
            16 << 10
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("straggler=0.1").is_err());
        assert!(FaultPlan::parse("straggler=2x4").is_err(), "prob > 1");
        assert!(FaultPlan::parse("straggler=0.1x0.5").is_err(), "mult < 1");
        assert!(FaultPlan::parse("kill=3").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("mempress=0.5").is_err());
    }

    #[test]
    fn empty_and_none_parse_to_inactive() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let p = FaultPlan::parse("seed=9,straggler=0.3x2,drop=0.3").unwrap();
        for node in 0..8usize {
            for step in 0..32u32 {
                assert_eq!(
                    p.straggler_multiplier(node, step),
                    p.straggler_multiplier(node, step)
                );
            }
        }
        // different seeds give different decision patterns
        let q = FaultPlan { seed: 10, ..p };
        let agree = (0..1000u64)
            .filter(|&i| p.drops_send(0, i) == q.drops_send(0, i))
            .count();
        assert!(agree < 1000, "seeds must matter");
    }

    #[test]
    fn decision_rates_track_probabilities() {
        let p = FaultPlan::parse("seed=1,drop=0.1").unwrap();
        let hits = (0..20_000u64).filter(|&i| p.drops_send(3, i)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn override_nests_restores_and_stays_thread_local() {
        let plan = FaultPlan::parse("seed=5,drop=0.5").unwrap();
        assert_eq!(current_faults(), FaultPlan::none());
        with_faults(plan, || {
            assert_eq!(current_faults(), plan);
            let inner = FaultPlan::parse("seed=6,ckpt=2").unwrap();
            assert_eq!(with_faults(inner, current_faults), inner);
            assert_eq!(current_faults(), plan);
            let other = std::thread::spawn(current_faults).join().unwrap();
            assert_eq!(other, FaultPlan::none(), "override must stay thread-local");
        });
        assert_eq!(current_faults(), FaultPlan::none());
    }

    #[test]
    fn panic_does_not_leak_override() {
        let plan = FaultPlan::parse("seed=5,drop=0.5").unwrap();
        let r = std::panic::catch_unwind(|| with_faults(plan, || panic!("cell failed")));
        assert!(r.is_err());
        assert_eq!(current_faults(), FaultPlan::none());
    }

    #[test]
    fn parse_link_terms_round_trip_through_key() {
        let spec = "seed=3,linkdrop=0.02,dup=0.01,slowlink=0-1:4.0";
        let p = FaultPlan::parse(spec).unwrap();
        assert_eq!(p.link_drop_prob, 0.02);
        assert_eq!(p.dup_prob, 0.01);
        assert_eq!(
            p.slow_link,
            Some(SlowLink {
                src: 0,
                dst: 1,
                factor: 4.0
            })
        );
        assert!(p.has_link_faults() && p.is_active());
        assert_eq!(FaultPlan::parse(&p.key()).unwrap(), p);
    }

    #[test]
    fn duplicate_clauses_are_rejected_with_span() {
        let err = FaultPlan::parse("seed=1,drop=0.1,drop=0.2").unwrap_err();
        assert!(err.contains("duplicate fault clause `drop`"), "{err}");
        let caret = err.lines().last().unwrap();
        // the caret line underlines the *second* `drop=0.2` clause
        assert_eq!(caret.find('^'), Some(2 + 16), "{err}");
        assert_eq!(caret.matches('^').count(), "drop=0.2".len(), "{err}");
    }

    #[test]
    fn out_of_range_probability_points_at_value() {
        let err = FaultPlan::parse("seed=1,drop=1.5").unwrap_err();
        assert!(err.contains("probability `1.5` must be in [0, 1]"), "{err}");
        let caret = err.lines().last().unwrap();
        assert_eq!(caret.find('^'), Some(2 + 12), "{err}");
        assert_eq!(caret.matches('^').count(), 3, "{err}");
    }

    #[test]
    fn link_drop_events_grow_monotonically_with_probability() {
        let lo = FaultPlan::parse("seed=11,linkdrop=0.05").unwrap();
        let hi = FaultPlan::parse("seed=11,linkdrop=0.3").unwrap();
        let mut lo_events = 0u32;
        for seq in 0..2000u64 {
            for attempt in 0..4u32 {
                if lo.link_drop_hits(0, 1, seq, attempt) {
                    lo_events += 1;
                    assert!(
                        hi.link_drop_hits(0, 1, seq, attempt),
                        "raising linkdrop removed a retransmission event"
                    );
                }
            }
        }
        assert!(lo_events > 0);
    }

    #[test]
    fn slow_link_only_matches_its_directed_pair() {
        let p = FaultPlan::parse("slowlink=2-5:3").unwrap();
        assert_eq!(p.slow_link_factor(2, 5), Some(3.0));
        assert_eq!(p.slow_link_factor(5, 2), None);
        assert_eq!(p.slow_link_factor(2, 4), None);
        assert!(p.has_link_faults());
    }

    #[test]
    fn slowlink_rejects_self_loops_and_sublinear_factors() {
        assert!(FaultPlan::parse("slowlink=1-1:2").is_err());
        assert!(FaultPlan::parse("slowlink=0-1:0.5").is_err());
        assert!(FaultPlan::parse("slowlink=0-1").is_err());
    }

    #[test]
    fn checkpoint_only_plans_are_active() {
        let p = FaultPlan::parse("ckpt=4").unwrap();
        assert!(p.is_active(), "checkpointing has a cost even without kills");
        assert_eq!(p.key(), "seed=0,ckpt=4");
    }

    #[test]
    fn parse_membership_round_trips_through_key() {
        let spec = "seed=2,join=4@3,join=5@3,leave=1@7,hw=4:oldgen,hw=2:slownic,ckpt=2";
        let p = FaultPlan::parse(spec).unwrap();
        assert_eq!(
            p.join_events().collect::<Vec<_>>(),
            vec![
                MembershipEvent { node: 4, step: 3 },
                MembershipEvent { node: 5, step: 3 },
            ]
        );
        assert_eq!(
            p.leave_events().collect::<Vec<_>>(),
            vec![MembershipEvent { node: 1, step: 7 }]
        );
        assert_eq!(p.hw_profile(4), Some(NodeProfile::OldGen));
        assert_eq!(p.hw_profile(2), Some(NodeProfile::SlowNic));
        assert_eq!(p.hw_profile(0), None);
        assert_eq!(p.membership_max_node(), Some(5));
        assert!(p.has_membership() && p.has_hw() && p.is_elastic());
        assert!(p.is_active());
        assert_eq!(FaultPlan::parse(&p.key()).unwrap(), p);
    }

    #[test]
    fn hw_only_plan_is_elastic_and_active() {
        let p = FaultPlan::parse("hw=1:oldgen").unwrap();
        assert!(!p.has_membership());
        assert!(p.has_hw() && p.is_elastic() && p.is_active());
        assert_eq!(p.membership_max_node(), Some(1));
        assert_eq!(p.key(), "seed=0,hw=1:oldgen");
    }

    #[test]
    fn membership_clauses_may_repeat_up_to_the_cap() {
        let p = FaultPlan::parse("join=4@1,join=5@1,join=6@1,join=7@1").unwrap();
        assert_eq!(p.join_events().count(), 4);
        let err = FaultPlan::parse("join=4@1,join=5@1,join=6@1,join=7@1,join=8@1").unwrap_err();
        assert!(err.contains("at most 4 `join` events"), "{err}");
        // the caret underlines the fifth clause
        let caret = err.lines().last().unwrap();
        assert_eq!(caret.find('^'), Some(2 + 4 * "join=4@1,".len()), "{err}");
    }

    #[test]
    fn duplicate_membership_node_is_rejected() {
        let err = FaultPlan::parse("join=4@1,join=4@2").unwrap_err();
        assert!(err.contains("node 4 already has a `join` event"), "{err}");
        let err = FaultPlan::parse("hw=1:oldgen,hw=1:slownic").unwrap_err();
        assert!(err.contains("node 1 already has a `hw` profile"), "{err}");
    }

    #[test]
    fn leave_of_master_is_rejected() {
        let err = FaultPlan::parse("leave=0@3").unwrap_err();
        assert!(err.contains("node 0 coordinates barriers"), "{err}");
    }

    #[test]
    fn kill_and_leave_of_same_node_conflict() {
        // regardless of clause order or steps: a graceful leave and a
        // crash of the same node cannot both be scheduled
        let err = FaultPlan::parse("leave=2@5,kill=2@3").unwrap_err();
        assert!(err.contains("cannot both `leave` and be `kill`ed"), "{err}");
        let err = FaultPlan::parse("kill=2@3,leave=2@5").unwrap_err();
        assert!(err.contains("cannot both `leave` and be `kill`ed"), "{err}");
        // different nodes are fine
        assert!(FaultPlan::parse("kill=1@3,leave=2@5,ckpt=2").is_ok());
    }

    #[test]
    fn leave_before_join_of_same_node_is_rejected() {
        let err = FaultPlan::parse("join=4@5,leave=4@5").unwrap_err();
        assert!(err.contains("must join strictly before"), "{err}");
        let err = FaultPlan::parse("leave=4@2,join=4@5").unwrap_err();
        assert!(err.contains("must join strictly before"), "{err}");
        // join-then-leave is the symmetric grow-then-shrink case
        let p = FaultPlan::parse("join=4@2,leave=4@5").unwrap();
        assert_eq!(p.join_events().count(), 1);
        assert_eq!(p.leave_events().count(), 1);
    }

    #[test]
    fn membership_rejects_malformed_and_out_of_range() {
        assert!(FaultPlan::parse("join=4").is_err());
        assert!(FaultPlan::parse("join=x@2").is_err());
        assert!(FaultPlan::parse("join=4@x").is_err());
        assert!(FaultPlan::parse("hw=4").is_err());
        assert!(FaultPlan::parse("hw=x:oldgen").is_err());
        let err = FaultPlan::parse("join=9999@2").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = FaultPlan::parse("hw=9999:oldgen").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn unknown_hw_profile_points_at_profile_name() {
        let err = FaultPlan::parse("hw=1:fastgen").unwrap_err();
        assert!(err.contains("unknown hardware profile `fastgen`"), "{err}");
        let caret = err.lines().last().unwrap();
        // caret starts under `fastgen` (after "hw=1:")
        assert_eq!(caret.find('^'), Some(2 + 5), "{err}");
        assert_eq!(caret.matches('^').count(), "fastgen".len(), "{err}");
    }
}
