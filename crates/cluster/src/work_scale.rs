//! Thread-local work-scale override for the simulator.
//!
//! The work scale multiplies every metered work item, message and
//! allocation, extrapolating a structurally identical graph `scale`×
//! larger (see DESIGN.md §2). It used to be communicated to [`Sim::new`]
//! via the `GRAPHMAZE_WORK_SCALE` environment variable alone, which is
//! process-global and therefore racy once sweep cells run on a thread
//! pool. The override here is **per-thread**: each sweep worker sets its
//! own scale without observing its neighbours. The environment variable
//! still works as a process-wide default when no override is active.
//!
//! [`Sim::new`]: crate::Sim::new

use std::cell::Cell;

thread_local! {
    static OVERRIDE: Cell<Option<f64>> = const { Cell::new(None) };
}

/// The work scale in effect on this thread: the innermost
/// [`with_work_scale`] override if any, else the `GRAPHMAZE_WORK_SCALE`
/// environment variable, else 1.0. Values below 1.0 or non-finite are
/// ignored.
pub fn current_work_scale() -> f64 {
    match OVERRIDE.with(Cell::get) {
        Some(s) => s,
        None => std::env::var("GRAPHMAZE_WORK_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|&s| s.is_finite() && s >= 1.0)
            .unwrap_or(1.0),
    }
}

/// Restores the previous thread-local override when dropped — including
/// during unwinding, so a panicking sweep cell cannot leak its scale into
/// the next cell run on the same worker thread.
pub struct WorkScaleGuard {
    prev: Option<f64>,
}

impl Drop for WorkScaleGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Installs a thread-local work-scale override (clamped to ≥ 1.0) and
/// returns the guard that undoes it.
pub fn set_work_scale(scale: f64) -> WorkScaleGuard {
    let prev = OVERRIDE.with(|c| c.replace(Some(scale.max(1.0))));
    WorkScaleGuard { prev }
}

/// Runs `f` under a work-scale override of `scale`, restoring the
/// previous value afterwards (even if `f` panics). Overrides nest.
pub fn with_work_scale<T>(scale: f64, f: impl FnOnce() -> T) -> T {
    let _guard = set_work_scale(scale);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_nests_and_restores() {
        assert_eq!(current_work_scale(), 1.0);
        let outer = with_work_scale(4.0, || {
            let inner = with_work_scale(16.0, current_work_scale);
            (current_work_scale(), inner)
        });
        assert_eq!(outer, (4.0, 16.0));
        assert_eq!(current_work_scale(), 1.0);
    }

    #[test]
    fn scale_below_one_is_clamped() {
        assert_eq!(with_work_scale(0.25, current_work_scale), 1.0);
    }

    #[test]
    fn panic_does_not_leak_override() {
        let r = std::panic::catch_unwind(|| with_work_scale(9.0, || panic!("cell failed")));
        assert!(r.is_err());
        assert_eq!(current_work_scale(), 1.0);
    }

    #[test]
    fn threads_do_not_observe_each_other() {
        with_work_scale(32.0, || {
            let other = std::thread::spawn(current_work_scale).join().unwrap();
            assert_eq!(other, 1.0, "override must stay thread-local");
            assert_eq!(current_work_scale(), 32.0);
        });
    }
}
