//! # graphmaze-cluster
//!
//! The simulated multi-node substrate on which all graphmaze benchmarks
//! run. The paper's evaluation platform — up to 64 Xeon E5-2697 nodes on
//! FDR InfiniBand (§4.3) — is reproduced as a deterministic discrete-cost
//! simulator:
//!
//! * algorithms execute **for real** on real data partitioned across
//!   simulated nodes (results are bit-checked against single-node code);
//! * every byte streamed, random access made, flop executed and message
//!   sent is metered ([`graphmaze_metrics::Work`]) and converted to
//!   simulated seconds using the paper's own hardware constants
//!   ([`HardwareSpec::paper`]);
//! * communication layers carry the paper's measured characteristics
//!   ([`CommLayer::mpi`], [`CommLayer::socket`], [`CommLayer::multi_socket`],
//!   [`CommLayer::netty`] — §3, §5.4, §6.1.3);
//! * per-framework execution behaviour (core usage, buffering, overlap,
//!   per-superstep coordination cost) is captured by [`ExecProfile`];
//! * all cross-node traffic flows through one message plane
//!   ([`router::Router`]/[`router::Mailbox`]): per-destination buffering,
//!   flush policies, combiners, id compression and a single packetization
//!   rule, recording the per-(src, dst) traffic matrix of every run;
//! * partitioning schemes match §6.1.1: 1-D balanced-by-edges
//!   ([`Partition1D`]), 2-D grid ([`Partition2D`]), and high-degree
//!   replication ([`partition::hubs_to_replicate`]);
//! * seeded deterministic fault injection — stragglers, message drops,
//!   transient memory pressure, whole-node failure — with Giraph-style
//!   checkpoint/restart recovery is configured by a [`FaultPlan`]
//!   ([`faults`]);
//! * elastic cluster membership — node joins warm-started from the last
//!   checkpoint, graceful leaves with mailbox drain, heterogeneous
//!   hardware profiles ([`NodeProfile`]) — triggers live weighted
//!   repartitioning with migration traffic charged into the traffic
//!   matrix (`join=`/`leave=`/`hw=` fault-plan clauses).

pub mod comm;
pub mod compress;
pub mod faults;
pub mod hardware;
pub mod partition;
pub mod profile;
pub mod router;
pub mod sim;
pub mod work_scale;

pub use comm::CommLayer;
pub use faults::{
    current_faults, span_err, with_faults, FaultPlan, HwOverride, MembershipEvent, NodeFailure,
    SlowLink, MAX_MEMBERSHIP_EVENTS,
};
pub use hardware::{ClusterSpec, HardwareSpec, NodeProfile};
pub use partition::{weighted_bounds, Partition1D, Partition2D};
pub use profile::ExecProfile;
pub use router::{packets_for, Combiner, FlushPolicy, Mailbox, Router, RouterConfig, PACKET_BYTES};
pub use sim::{Sim, SimError, DEFAULT_PHASE, HEARTBEAT_WIRE_BYTES};
pub use work_scale::{current_work_scale, with_work_scale};
