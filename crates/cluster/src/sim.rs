//! The discrete-cost cluster simulator.
//!
//! Engines drive a [`Sim`] through a bulk-synchronous protocol:
//!
//! 1. [`Sim::charge`] — meter real computation done on behalf of a node;
//! 2. [`Sim::send`] — meter real message payloads put on the wire;
//! 3. [`Sim::alloc`]/[`Sim::free`] — account data-structure memory;
//! 4. [`Sim::end_step`] — the BSP barrier: the step costs the *maximum*
//!    over nodes of compute time and comm time (overlapped or summed per
//!    the engine's [`ExecProfile`]), plus the per-step coordination cost.
//!
//! The final [`RunReport`] carries the simulated runtime plus exactly the
//! system-level metrics of the paper's Figure 6.

use graphmaze_metrics::{
    MemTracker, OutOfMemory, RebalanceStats, RecoveryStats, RetransmitStats, RunReport, StepRecord,
    Timeline, TrafficMatrix, TrafficStats, Work,
};

use crate::faults::{FaultPlan, MAX_SEND_ATTEMPTS};
use crate::hardware::ClusterSpec;
use crate::profile::ExecProfile;

/// Wire bytes of one failure-detector heartbeat (sequence number + term,
/// sent by every worker to the master at each barrier when the fault
/// plan has link-level terms).
pub const HEARTBEAT_WIRE_BYTES: u64 = 16;

/// Errors surfaced by the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A node exceeded its memory capacity — the paper's CombBLAS-TC /
    /// Giraph failure mode.
    OutOfMemory(OutOfMemory),
    /// The engine asked for an impossible configuration (e.g. CombBLAS on
    /// a non-square node count).
    InvalidConfig(String),
    /// A whole node died (injected by the fault plan) under an engine
    /// without checkpoint/restart — the run cannot complete (fail-stop).
    NodeFailed {
        /// The node that died.
        node: usize,
        /// The step during which it died.
        step: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfMemory(e) => write!(f, "{e}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::NodeFailed { node, step } => write!(
                f,
                "node {node} failed during step {step} and the engine cannot recover (fail-stop)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<OutOfMemory> for SimError {
    fn from(e: OutOfMemory) -> Self {
        SimError::OutOfMemory(e)
    }
}

/// The simulator state for one run.
#[derive(Clone, Debug)]
pub struct Sim {
    cluster: ClusterSpec,
    profile: ExecProfile,
    clock: f64,
    /// Per-node compute seconds accumulated in the current step.
    step_compute: Vec<f64>,
    /// Per-node wire bytes sent in the current step.
    step_bytes: Vec<u64>,
    /// Per-node messages sent in the current step.
    step_msgs: Vec<u64>,
    /// Per-node pre-compression bytes in the current step.
    step_raw_bytes: Vec<u64>,
    mem: Vec<MemTracker>,
    traffic: TrafficStats,
    /// Per-(src, dst) wire bytes/messages of routed transfers.
    matrix: TrafficMatrix,
    /// Cumulative wire bytes sent per node, any send path.
    node_sent_bytes: Vec<u64>,
    busy_core_seconds: f64,
    compute_seconds: f64,
    comm_seconds: f64,
    steps: u32,
    iterations: u32,
    work_scale: f64,
    total_work: Work,
    /// Phase label applied to steps folded from now on (see [`Sim::phase`]).
    phase: String,
    timeline: Timeline,
    /// Fault plan in effect (from [`crate::faults::current_faults`]).
    faults: FaultPlan,
    /// Per-node send sequence numbers (drop decisions hash these).
    send_seq: Vec<u64>,
    /// Per-(src, dst) lane transfer sequence numbers (link-fault
    /// decisions hash these); only advanced when the plan has link
    /// faults, so inactive plans stay bit-identical.
    link_seq: Vec<u64>,
    /// Per-node allocation sequence numbers (pressure decisions hash these).
    alloc_seq: Vec<u64>,
    /// Per-node resilience-protocol seconds accumulated in the current
    /// step: retransmission timeouts (exponential backoff) and slow-link
    /// excess wire time.
    step_wait: Vec<f64>,
    /// Per-node "straggler already counted this step" markers.
    straggler_hit: Vec<bool>,
    /// Fault/recovery counters for the report.
    recovery: RecoveryStats,
    /// Lossy-link resilience counters for the report.
    retransmit: RetransmitStats,
    /// Whether the plan's node failure already fired (it fires once).
    failure_fired: bool,
    /// Number of leading steps covered by the last checkpoint.
    checkpointed_steps: u32,
    /// Bytes of the last checkpoint (restore cost on failure).
    last_checkpoint_bytes: u64,
    /// Whether the elasticity machinery is engaged
    /// ([`FaultPlan::is_elastic`]). When false, `place` is the identity,
    /// every hardware factor is exactly 1.0 and all physical arrays have
    /// logical length, so the run is bit-identical to pre-elastic
    /// simulators.
    elastic: bool,
    /// Per-*physical*-node membership: `active[p]` iff node `p` is in
    /// the cluster right now. Physical arrays (`step_compute`, `mem`,
    /// `matrix`, …) cover `max(cluster.nodes, 1 + max node named by the
    /// plan)` slots; engines only ever see the *logical* count
    /// ([`Sim::nodes`]).
    active: Vec<bool>,
    /// Logical partition → physical node placement, length
    /// `cluster.nodes`. Engines charge/send against logical ids; this
    /// map is the single translation point. Identity until a membership
    /// barrier repartitions.
    place: Vec<usize>,
    /// Per-physical-node compute-time factor from `hw=` profiles (1.0
    /// baseline).
    hw_compute: Vec<f64>,
    /// Per-physical-node NIC wire-time factor (1.0 baseline).
    hw_nic: Vec<f64>,
    /// Per-physical-node capacity weight for the repartitioner (1.0
    /// baseline).
    hw_weight: Vec<f64>,
    /// Live allocated bytes per *logical* partition — the ledger of what
    /// a rebalance must migrate when the partition's placement changes.
    logical_mem: Vec<u64>,
    /// Engine-declared vertices per logical partition (see
    /// [`Sim::declare_partition`]); feeds `migrated_vertices`.
    logical_vertices: Vec<u64>,
    /// Engine-declared edge loads per logical partition; weights the
    /// repartitioner's cuts (all-zero ⇒ uniform split by count).
    logical_loads: Vec<u64>,
    /// Elasticity counters for the report.
    rebalance: RebalanceStats,
}

/// Phase label steps carry before the engine's first [`Sim::phase`] call.
pub const DEFAULT_PHASE: &str = "step";

impl Sim {
    /// A fresh simulator for `cluster` running under `profile`.
    ///
    /// The **work scale** comes from [`crate::work_scale::current_work_scale`]:
    /// the calling thread's `with_work_scale` override if any, else the
    /// `GRAPHMAZE_WORK_SCALE` environment variable, else 1.0. Every
    /// charged work item, message and allocation is multiplied by it,
    /// extrapolating a structurally identical graph `scale`× larger. The
    /// repro harness uses this to report paper-scale runtimes (and
    /// paper-scale OOM behaviour) from scaled-down inputs; see DESIGN.md §2.
    /// The **fault plan** likewise comes from
    /// [`crate::faults::current_faults`] (thread-local override, else the
    /// `GRAPHMAZE_FAULTS` environment variable, else no faults); see
    /// `cluster::faults` for the model. With no active plan the
    /// simulation is bit-identical to one built before faults existed.
    pub fn new(cluster: ClusterSpec, profile: ExecProfile) -> Self {
        let work_scale = crate::work_scale::current_work_scale();
        let faults = crate::faults::current_faults();
        let n = cluster.nodes;
        // Physical arrays cover every node the plan may ever activate or
        // profile; without elastic terms this is exactly `n` and nothing
        // about the layout changes.
        let elastic = faults.is_elastic();
        let n_total = match faults.membership_max_node() {
            Some(m) => n.max(m + 1),
            None => n,
        };
        let mut hw_compute = vec![1.0; n_total];
        let mut hw_nic = vec![1.0; n_total];
        let mut hw_weight = vec![1.0; n_total];
        for h in faults.hw_overrides() {
            if h.node < n_total {
                hw_compute[h.node] = h.profile.compute_factor();
                hw_nic[h.node] = h.profile.nic_factor();
                hw_weight[h.node] = h.profile.capacity_weight();
            }
        }
        let mut active = vec![false; n_total];
        for a in active.iter_mut().take(n) {
            *a = true;
        }
        Sim {
            work_scale,
            faults,
            send_seq: vec![0; n],
            link_seq: vec![0; n * n],
            alloc_seq: vec![0; n],
            step_wait: vec![0.0; n],
            straggler_hit: vec![false; n],
            recovery: RecoveryStats::default(),
            retransmit: RetransmitStats::default(),
            failure_fired: false,
            checkpointed_steps: 0,
            last_checkpoint_bytes: 0,
            elastic,
            active,
            place: (0..n).collect(),
            hw_compute,
            hw_nic,
            hw_weight,
            logical_mem: vec![0; n],
            logical_vertices: vec![0; n],
            logical_loads: vec![0; n],
            rebalance: RebalanceStats::default(),
            total_work: Work::ZERO,
            cluster,
            profile,
            clock: 0.0,
            step_compute: vec![0.0; n_total],
            step_bytes: vec![0; n_total],
            step_msgs: vec![0; n_total],
            step_raw_bytes: vec![0; n_total],
            mem: (0..n_total)
                .map(|i| MemTracker::new(i, cluster.hw.mem_capacity_bytes))
                .collect(),
            traffic: TrafficStats::default(),
            matrix: TrafficMatrix::new(n_total),
            node_sent_bytes: vec![0; n_total],
            busy_core_seconds: 0.0,
            compute_seconds: 0.0,
            comm_seconds: 0.0,
            steps: 0,
            iterations: 0,
            phase: DEFAULT_PHASE.to_string(),
            timeline: Timeline::new(n),
        }
    }

    /// Number of simulated *logical* nodes — what engines partition
    /// over. Fixed for the whole run: membership events change which
    /// physical node hosts each logical partition, never this count.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.cluster.nodes
    }

    /// The physical node currently hosting logical partition `node`
    /// (identity unless an elastic plan has repartitioned).
    #[inline]
    pub fn placement(&self, node: usize) -> usize {
        self.place[node]
    }

    /// Physical nodes currently in the cluster (equals [`Sim::nodes`]
    /// unless membership events changed it).
    pub fn active_nodes(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Declares the engine's partition layout for logical `node`:
    /// `vertices` owned and `edges` of load. Optional — consulted only
    /// by the elastic repartitioner, which weights its cuts by these
    /// loads (uniform split when never declared) and counts
    /// `migrated_vertices` from the vertex figures.
    pub fn declare_partition(&mut self, node: usize, vertices: u64, edges: u64) {
        self.logical_vertices[node] = vertices;
        self.logical_loads[node] = edges;
    }

    /// The active execution profile.
    #[inline]
    pub fn profile(&self) -> &ExecProfile {
        &self.profile
    }

    /// The cluster specification.
    #[inline]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Converts counted work to node-seconds under the current profile —
    /// a roofline over the three node resources (paper §5.1: every kernel
    /// is limited by memory bandwidth, random-access latency or
    /// arithmetic). Each random access moves a full cache line, so heavy
    /// gather loads consume *bandwidth* as well as latency; whichever
    /// ceiling is hit first binds.
    pub fn compute_seconds_for(&self, work: Work) -> f64 {
        const CACHE_LINE: f64 = 64.0;
        let hw = &self.cluster.hw;
        let p = &self.profile;
        let cf = p.core_fraction.clamp(0.0, 1.0);
        let cores_used = (f64::from(hw.cores) * cf).max(1.0);
        let m = p.work_multiplier;
        let dram_bytes = work.seq_bytes as f64 + work.rand_accesses as f64 * CACHE_LINE;
        let stream_t = dram_bytes * m / hw.effective_mem_bw(cf).max(1.0);
        let mlp = if p.sw_prefetch {
            hw.mlp_prefetch
        } else {
            hw.mlp_base
        };
        let rand_t = work.rand_accesses as f64 * m * hw.rand_latency_s / (mlp * cores_used);
        let flop_t = work.flops as f64 * m / (hw.freq_hz * hw.ipc * cores_used);
        stream_t.max(rand_t).max(flop_t)
    }

    /// Meters `work` done on behalf of `node` in the current step. If the
    /// fault plan marks this (node, step) a straggler, the time (not the
    /// counted work) is multiplied by the plan's slowdown — the node does
    /// the same work, slower.
    pub fn charge(&mut self, node: usize, work: Work) {
        let work = work.scaled(self.work_scale);
        self.total_work.accumulate(work);
        let mut secs = self.compute_seconds_for(work);
        if let Some(m) = self.faults.straggler_multiplier(node, self.steps) {
            secs *= m;
            if !self.straggler_hit[node] {
                self.straggler_hit[node] = true;
                self.recovery.straggler_events += 1;
            }
        }
        // Placement maps the logical partition to its physical host;
        // the host's hardware factor is exactly 1.0 on baseline nodes,
        // so non-elastic runs stay bit-identical.
        let pn = self.place[node];
        self.step_compute[pn] += secs * self.hw_compute[pn];
    }

    /// Whether speculative straggler re-execution is in effect: the
    /// profile opts in (Giraph/GraphLab family) *and* the fault plan has
    /// link-level terms — the same gate as the rest of the lossy-link
    /// machinery, so plans without link terms keep bit-identical
    /// timelines.
    pub fn speculation_active(&self) -> bool {
        self.profile.speculative_reexec && self.faults.has_link_faults()
    }

    /// The straggler multiplier the fault plan assigns `node` for the
    /// *current* step, if any — lets an engine decide to speculate
    /// before charging the partition's work.
    pub fn straggler_at(&self, node: usize) -> Option<f64> {
        self.faults.straggler_multiplier(node, self.steps)
    }

    /// Meters `work` for a straggler partition of `node` that a `buddy`
    /// node speculatively re-executed. Both nodes pay the *un-slowed*
    /// compute time (the primary is preempted as soon as the buddy's
    /// copy finishes), the work is counted twice (it really ran twice),
    /// and the buddy's `dup_msgs` duplicate result messages — suppressed
    /// by the caller's Mailbox combiner before reaching the wire — are
    /// tallied in [`RetransmitStats::suppressed_duplicates`].
    pub fn charge_speculated(&mut self, node: usize, buddy: usize, work: Work, dup_msgs: u64) {
        debug_assert_ne!(node, buddy, "speculation needs a second node");
        let work = work.scaled(self.work_scale);
        self.total_work.accumulate(work);
        self.total_work.accumulate(work);
        let secs = self.compute_seconds_for(work);
        let (pn, pb) = (self.place[node], self.place[buddy]);
        self.step_compute[pn] += secs * self.hw_compute[pn];
        self.step_compute[pb] += secs * self.hw_compute[pb];
        if !self.straggler_hit[node] {
            self.straggler_hit[node] = true;
            self.recovery.straggler_events += 1;
        }
        self.retransmit.speculative_reexecs += 1;
        self.retransmit.speculative_seconds += secs;
        self.retransmit.suppressed_duplicates += dup_msgs;
    }

    /// Meters a message of `wire_bytes` (post-compression) sent by `node`.
    /// `raw_bytes` is the pre-compression payload size; CPU-side message
    /// handling (serialization/boxing) is charged per the comm layer.
    ///
    /// This destination-blind entry point is for cost-model unit tests;
    /// engines route every transfer through `cluster::router`, which
    /// calls [`Sim::send_to`] so the per-(src, dst) traffic matrix stays
    /// complete.
    pub fn send(&mut self, node: usize, wire_bytes: u64, raw_bytes: u64, msgs: u64) {
        self.send_inner(node, wire_bytes, raw_bytes, msgs);
    }

    /// [`Sim::send`] with an explicit destination: additionally records
    /// the transfer (post-scaling, post-retransmission) into the
    /// per-(src, dst) traffic matrix of the run report, and — when the
    /// fault plan has link-level terms — runs the lane through the
    /// ack/retransmit protocol (timeout + exponential backoff; see
    /// DESIGN.md §7c "Lossy-link message plane").
    pub fn send_to(&mut self, src: usize, dst: usize, wire_bytes: u64, raw_bytes: u64, msgs: u64) {
        debug_assert_ne!(src, dst, "local delivery never touches the wire");
        let (psrc, pdst) = (self.place[src], self.place[dst]);
        if psrc == pdst {
            // Both logical partitions live on one physical node after a
            // shrink: the payload moves in-memory, never on the wire.
            self.rebalance.colocated_bytes += (wire_bytes as f64 * self.work_scale) as u64;
            return;
        }
        let (wire_sent, raw_sent, msgs_sent) = self.send_inner(src, wire_bytes, raw_bytes, msgs);
        self.matrix.record(psrc, pdst, wire_sent, msgs_sent);
        if self.faults.has_link_faults() {
            self.link_protocol(src, dst, wire_sent, raw_sent, msgs_sent);
        }
    }

    /// The ack/retransmit protocol for one lane transfer on a lossy
    /// link. Attempt `k` of transfer `seq` is lost iff one fixed hash of
    /// `(seed, src, dst, seq, k)` falls under `linkdrop` — a threshold
    /// test, so raising the probability only *adds* losses and the event
    /// set is identical at any `--jobs`. Every loss costs the sender one
    /// retransmission (full wire bytes, re-charged to the step, the
    /// traffic matrix and the comm-layer CPU) plus a timeout of
    /// `retransmit_timeout_s × 2^k` (exponential backoff) accounted in
    /// the step's `resilience` lane. A delivered transfer may then be
    /// duplicated in flight (`dup`), and a configured `slowlink` charges
    /// the excess wire time of every transmission on that link.
    fn link_protocol(&mut self, src: usize, dst: usize, wire: u64, raw: u64, msgs: u64) {
        let n = self.nodes();
        let seq = self.link_seq[src * n + dst];
        self.link_seq[src * n + dst] += 1;
        let rto = self.profile.retransmit_timeout_s;
        let mut attempt = 0u32;
        while attempt + 1 < MAX_SEND_ATTEMPTS && self.faults.link_drop_hits(src, dst, seq, attempt)
        {
            self.retransmit.retransmits += 1;
            self.retransmit.retransmitted_bytes += wire;
            self.meter_extra(src, dst, wire, raw, msgs);
            self.step_wait[src] += rto * f64::from(1u32 << attempt.min(20));
            attempt += 1;
        }
        if self.faults.duplicates_delivery(src, dst, seq) {
            self.retransmit.duplicates += 1;
            self.retransmit.duplicate_bytes += wire;
            self.meter_extra(src, dst, wire, raw, msgs);
        }
        if let Some(x) = self.faults.slow_link_factor(src, dst) {
            let txs = f64::from(attempt + 1);
            let excess = (x - 1.0) * self.profile.comm.transfer_seconds(wire, msgs) * txs;
            self.step_wait[src] += excess;
        }
    }

    /// Meters protocol-level extra traffic (retransmissions, duplicate
    /// deliveries, heartbeats): the same accounting as [`Sim::send_inner`]
    /// — step counters, cumulative per-node bytes, comm-layer CPU and the
    /// traffic matrix — but without consulting fault decisions (values
    /// are already final).
    fn meter_extra(&mut self, src: usize, dst: usize, wire: u64, raw: u64, msgs: u64) {
        let (psrc, pdst) = (self.place[src], self.place[dst]);
        if psrc == pdst {
            self.rebalance.colocated_bytes += wire;
            return;
        }
        self.step_bytes[psrc] += wire;
        self.step_raw_bytes[psrc] += raw;
        self.step_msgs[psrc] += msgs;
        self.node_sent_bytes[psrc] += wire;
        let cpu_bytes = (wire as f64 * self.profile.comm.cpu_bytes_per_wire_byte) as u64;
        if cpu_bytes > 0 {
            let w = Work::stream(cpu_bytes);
            self.total_work.accumulate(w);
            self.step_compute[psrc] += self.compute_seconds_for(w) * self.hw_compute[psrc];
        }
        self.matrix.record(psrc, pdst, wire, msgs);
    }

    /// Shared metering body; returns the (wire bytes, raw bytes,
    /// messages) that actually hit the network after extrapolation and
    /// fault doubling.
    fn send_inner(
        &mut self,
        node: usize,
        wire_bytes: u64,
        raw_bytes: u64,
        msgs: u64,
    ) -> (u64, u64, u64) {
        // Extrapolation grows message *sizes*, not message counts: a
        // scale×-larger graph ships scale×-bigger bulk transfers over the
        // same communication pattern.
        let scale = self.work_scale;
        let mut wire_bytes = (wire_bytes as f64 * scale) as u64;
        let mut raw_bytes = (raw_bytes as f64 * scale) as u64;
        let mut msgs = msgs;
        if self.faults.drop_prob > 0.0 {
            let seq = self.send_seq[node];
            self.send_seq[node] += 1;
            if self.faults.drops_send(node, seq) {
                // The transfer is lost in flight and resent whole: twice
                // the wire/raw bytes and messages hit the network and the
                // comm-layer CPU below.
                self.recovery.dropped_sends += 1;
                self.recovery.retransmitted_bytes += wire_bytes;
                wire_bytes *= 2;
                raw_bytes *= 2;
                msgs *= 2;
            }
        }
        let pn = self.place[node];
        self.step_bytes[pn] += wire_bytes;
        self.step_raw_bytes[pn] += raw_bytes;
        self.step_msgs[pn] += msgs;
        self.node_sent_bytes[pn] += wire_bytes;
        let cpu_bytes = (wire_bytes as f64 * self.profile.comm.cpu_bytes_per_wire_byte) as u64;
        if cpu_bytes > 0 {
            // already scaled: charge unscaled through step_compute directly
            let w = Work::stream(cpu_bytes);
            self.total_work.accumulate(w);
            self.step_compute[pn] += self.compute_seconds_for(w) * self.hw_compute[pn];
        }
        (wire_bytes, raw_bytes, msgs)
    }

    /// Accounts an allocation on `node`; fails when capacity is exceeded.
    /// Under the fault plan's transient memory pressure, phantom bytes
    /// (page cache, GC floor, a neighbouring process) temporarily compete
    /// for the same capacity: an allocation that would fit on a quiet
    /// node can OOM on a pressured one.
    pub fn alloc(&mut self, node: usize, bytes: u64, label: &str) -> Result<(), SimError> {
        let bytes = (bytes as f64 * self.work_scale) as u64;
        let pn = self.place[node];
        if self.faults.mem_pressure_prob > 0.0 {
            let seq = self.alloc_seq[node];
            self.alloc_seq[node] += 1;
            if self.faults.mem_pressure_hits(node, seq) {
                self.recovery.mem_pressure_events += 1;
                let m = &self.mem[pn];
                let pressured = m.in_use().saturating_add(self.faults.mem_pressure_bytes);
                if pressured.saturating_add(bytes) > m.capacity() {
                    return Err(SimError::OutOfMemory(OutOfMemory {
                        node,
                        in_use: pressured,
                        requested: bytes,
                        capacity: m.capacity(),
                        label: format!("{label}+mem-pressure"),
                    }));
                }
            }
        }
        self.mem[pn].alloc(bytes, label).map_err(SimError::from)?;
        self.logical_mem[node] += bytes;
        Ok(())
    }

    /// Charges the same allocation on **every** node (replicated state).
    pub fn alloc_all(&mut self, bytes: u64, label: &str) -> Result<(), SimError> {
        for node in 0..self.nodes() {
            self.alloc(node, bytes, label)?;
        }
        Ok(())
    }

    /// Releases a previously charged allocation on `node`.
    pub fn free(&mut self, node: usize, bytes: u64) {
        let bytes = (bytes as f64 * self.work_scale) as u64;
        self.mem[self.place[node]].free(bytes);
        self.logical_mem[node] = self.logical_mem[node].saturating_sub(bytes);
    }

    /// Releases the same allocation on every node.
    pub fn free_all(&mut self, bytes: u64) {
        for node in 0..self.nodes() {
            self.free(node, bytes);
        }
    }

    /// Current bytes in use on the physical node hosting logical `node`.
    pub fn mem_in_use(&self, node: usize) -> u64 {
        self.mem[self.place[node]].in_use()
    }

    /// Labels the steps folded from now on (until the next call) — the
    /// engine's way of tagging algorithm phases in the timeline, e.g.
    /// BFS top-down vs bottom-up, SGD vs GD passes, or Giraph superstep
    /// splits. Call it *before* the [`Sim::end_step`] that closes the
    /// work belonging to the phase.
    pub fn phase(&mut self, label: &str) {
        if self.phase != label {
            self.phase.clear();
            self.phase.push_str(label);
        }
    }

    /// The phase label currently in effect.
    pub fn current_phase(&self) -> &str {
        &self.phase
    }

    /// The BSP barrier: folds the current step into the clock and
    /// appends a [`StepRecord`] to the timeline.
    ///
    /// The clock advances by `compute + exposed_comm + barrier +
    /// recovery + resilience`, where exposed comm is what overlap failed
    /// to hide — algebraically the same `max(compute, comm)` body as
    /// before, but built from the components the step record carries, so
    /// the timeline's per-step sums reconcile with `sim_seconds`
    /// *bit-exactly* (`recovery` and `resilience` are exactly `0.0`
    /// without the corresponding fault terms).
    ///
    /// Under an active fault plan this is also where resilience happens:
    ///
    /// * with link-level fault terms, every worker heartbeats the master
    ///   (metered traffic), and the step's `resilience_s` lane carries
    ///   the slowest node's retransmission-timeout / slow-link seconds;
    /// * if the plan kills a node during this step, an engine profile
    ///   with `checkpoint_restart` pays restore + rollback-and-replay
    ///   (folded into the step's `recovery_s`) and carries on — under
    ///   link faults only after K missed heartbeats' worth of detection
    ///   latency; any other profile **fail-stops** with
    ///   [`SimError::NodeFailed`];
    /// * checkpoint/restart profiles write a checkpoint every
    ///   `checkpoint_interval` steps: max-node state over disk bandwidth,
    ///   plus an OOM check for the serialization staging buffer;
    /// * membership events (`join=`/`leave=`) scheduled for this barrier
    ///   trigger a live weighted repartitioning with state migration;
    ///   the stall rides the step's `rebalance_s` lane.
    pub fn end_step(&mut self) -> Result<(), SimError> {
        // Under the lossy-link plane every worker heartbeats the master
        // at the barrier — the failure detector's probe traffic, metered
        // like any other transfer (charged before the comm time below).
        if self.faults.has_link_faults() && self.nodes() > 1 {
            for node in 1..self.nodes() {
                self.retransmit.heartbeats += 1;
                self.retransmit.heartbeat_bytes += HEARTBEAT_WIRE_BYTES;
                self.meter_extra(node, 0, HEARTBEAT_WIRE_BYTES, HEARTBEAT_WIRE_BYTES, 1);
            }
        }
        let p = &self.profile;
        let compute_t = self.step_compute.iter().copied().fold(0.0, f64::max);
        // Per-node wire time × the node's NIC factor (exactly 1.0 on
        // baseline hardware, so non-elastic plans fold bit-identically).
        let comm_t = (0..self.step_bytes.len())
            .map(|i| {
                p.comm
                    .transfer_seconds(self.step_bytes[i], self.step_msgs[i])
                    * self.hw_nic[i]
            })
            .fold(0.0, f64::max);
        let exposed_comm = if p.overlap {
            (comm_t - compute_t).max(0.0)
        } else {
            comm_t
        };
        let barrier_t = p.per_step_overhead_s;
        let base_t = compute_t + exposed_comm + barrier_t;

        let mut recovery_t = 0.0;
        if self.faults.is_active() {
            // Whole-node failure fires while this step executes — before
            // any checkpoint this step would write.
            if let Some(f) = self.faults.fail {
                if !self.failure_fired && f.step == self.steps && f.node < self.nodes() {
                    self.failure_fired = true;
                    if !p.checkpoint_restart {
                        return Err(SimError::NodeFailed {
                            node: f.node,
                            step: self.steps,
                        });
                    }
                    // Under the lossy-link plane the failure is not
                    // known instantly: the master suspects the worker
                    // only after K consecutive missed heartbeats, and
                    // that detection latency is paid before recovery
                    // can begin.
                    if self.faults.has_link_faults() {
                        let detect_s = f64::from(p.heartbeat_miss_beats) * p.heartbeat_period_s;
                        self.retransmit.suspicions += 1;
                        self.retransmit.missed_beats += u64::from(p.heartbeat_miss_beats);
                        self.retransmit.detection_seconds += detect_s;
                        recovery_t += detect_s;
                    }
                    // Rollback-and-replay: read the last checkpoint back,
                    // re-execute every step it does not cover (their
                    // recorded durations, left to right), then re-execute
                    // the failed step itself at its base cost.
                    let disk_bw = self.cluster.hw.disk_bw_bps.max(1.0);
                    let restore_s = self.last_checkpoint_bytes as f64 / disk_bw;
                    let mut replay_s = 0.0;
                    for rec in &self.timeline.steps[self.checkpointed_steps as usize..] {
                        replay_s += rec.duration_s();
                    }
                    replay_s += base_t;
                    self.recovery.failures += 1;
                    self.recovery.steps_replayed += self.steps - self.checkpointed_steps + 1;
                    self.recovery.restore_seconds += restore_s;
                    self.recovery.replay_seconds += replay_s;
                    recovery_t += restore_s + replay_s;
                }
            }
            // Periodic checkpoint write once the step (and any recovery)
            // completes: every node serializes its state to disk; the
            // largest write binds the barrier.
            if p.checkpoint_restart
                && self.faults.checkpoint_interval > 0
                && (self.steps + 1).is_multiple_of(self.faults.checkpoint_interval)
            {
                for m in &self.mem {
                    // Serializing needs a staging buffer ~1/4 of state.
                    let staging = m.in_use() / 4;
                    if m.in_use().saturating_add(staging) > m.capacity() {
                        return Err(SimError::OutOfMemory(OutOfMemory {
                            node: m.node(),
                            in_use: m.in_use(),
                            requested: staging,
                            capacity: m.capacity(),
                            label: "checkpoint:staging".into(),
                        }));
                    }
                }
                let bytes = self.mem.iter().map(MemTracker::in_use).max().unwrap_or(0);
                let ckpt_s = bytes as f64 / self.cluster.hw.disk_bw_bps.max(1.0);
                self.recovery.checkpoints += 1;
                self.recovery.checkpoint_bytes += bytes;
                self.recovery.checkpoint_seconds += ckpt_s;
                recovery_t += ckpt_s;
                self.checkpointed_steps = self.steps + 1;
                self.last_checkpoint_bytes = bytes;
            }
        }

        // Resilience-protocol time: the barrier waits for the node that
        // spent longest in retransmission timeouts / slow-link excess.
        // Exactly 0.0 unless the plan has link faults, so the clock sum
        // below is bit-identical to the pre-lossy-link model.
        let resilience_t = self.step_wait.iter().copied().fold(0.0, f64::max);
        if resilience_t > 0.0 {
            self.retransmit.timeout_seconds += resilience_t;
        }

        // Membership events scheduled for the barrier ending this step:
        // joins warm-start, leaves drain, and the cluster repartitions
        // with the migration traffic metered into this step's byte
        // totals and the traffic matrix. Its *time* rides the dedicated
        // `rebalance` lane, charged after comm_t above so engine traffic
        // and migration traffic stay separable. Exactly 0.0 (and never
        // entered) without elastic plan terms, keeping the clock sum
        // bit-identical to pre-elastic simulators.
        let rebalance_t = if self.elastic {
            let t = self.process_membership()?;
            self.rebalance.stall_seconds += t;
            t
        } else {
            0.0
        };

        let step_t = base_t + recovery_t + resilience_t + rebalance_t;
        self.clock += step_t;
        self.compute_seconds += compute_t;
        self.comm_seconds += comm_t;

        let cores_used =
            f64::from(self.cluster.hw.cores) * self.profile.core_fraction.clamp(0.0, 1.0);
        self.busy_core_seconds += self
            .step_compute
            .iter()
            .map(|&c| c * cores_used)
            .sum::<f64>();

        let total_bytes: u64 = self.step_bytes.iter().sum();
        let total_msgs: u64 = self.step_msgs.iter().sum();
        let total_raw: u64 = self.step_raw_bytes.iter().sum();
        let max_node_bytes = self.step_bytes.iter().copied().max().unwrap_or(0);
        if total_bytes > 0 || total_msgs > 0 {
            self.traffic
                .record_step(total_bytes, total_msgs, total_raw, max_node_bytes, comm_t);
        }

        self.timeline.steps.push(StepRecord {
            step: self.steps,
            phase: self.phase.clone(),
            compute_s: compute_t,
            comm_s: exposed_comm,
            barrier_s: barrier_t,
            recovery_s: recovery_t,
            resilience_s: resilience_t,
            rebalance_s: rebalance_t,
            bytes_sent: total_bytes,
            messages: total_msgs,
            max_node_bytes,
            mem_peak_bytes: self.mem.iter().map(MemTracker::peak).max().unwrap_or(0),
        });

        self.step_compute.fill(0.0);
        self.step_bytes.fill(0);
        self.step_msgs.fill(0);
        self.step_raw_bytes.fill(0);
        self.step_wait.fill(0.0);
        self.straggler_hit.fill(false);
        self.steps += 1;
        Ok(())
    }

    /// Processes the membership events scheduled for the barrier ending
    /// the current step, deterministically: joins first (warm-started
    /// from the last checkpoint), then graceful leaves (the leaver's
    /// final-step messages are its drain — BSP guarantees the mailbox is
    /// empty at the barrier), then one weighted repartitioning of the
    /// logical partitions over the new active set. Partitions whose
    /// placement changed migrate their live state: bytes packetized by
    /// the router's rule into this step's counters and the traffic
    /// matrix, time bounded by the slowest (src, dst) link — including
    /// its NIC factors. Returns the barrier's stall seconds.
    ///
    /// Placement rule: when the active set is exactly the initial
    /// `{0..nodes-1}`, placement is the identity — so steps before the
    /// first event match a static run, and a symmetric join+leave
    /// restores the initial placement exactly. Any other active set gets
    /// a contiguous split of the logical partitions with per-node shares
    /// proportional to capacity weights ([`crate::weighted_bounds`]).
    fn process_membership(&mut self) -> Result<f64, SimError> {
        use std::collections::BTreeMap;
        let plan = self.faults;
        let step = self.steps;
        let mut changed = false;
        let mut stall = 0.0f64;
        let disk_bw = self.cluster.hw.disk_bw_bps.max(1.0);
        for e in plan.join_events() {
            if e.step == step && e.node < self.active.len() && !self.active[e.node] {
                self.active[e.node] = true;
                self.rebalance.joins += 1;
                changed = true;
                // Warm-start: the joiner reads the last superstep
                // checkpoint from shared storage before taking
                // ownership of any partition.
                let warm = self.last_checkpoint_bytes as f64 / disk_bw;
                self.rebalance.warmstart_seconds += warm;
                stall = stall.max(warm);
            }
        }
        for e in plan.leave_events() {
            if e.step == step && e.node < self.active.len() && self.active[e.node] {
                self.active[e.node] = false;
                self.rebalance.leaves += 1;
                changed = true;
                self.rebalance.drained_messages += self.step_msgs[e.node];
            }
        }
        if !changed {
            return Ok(stall);
        }
        self.rebalance.rebalances += 1;
        let active_list: Vec<usize> = (0..self.active.len()).filter(|&i| self.active[i]).collect();
        self.rebalance.peak_nodes = self.rebalance.peak_nodes.max(active_list.len() as u32);
        let n0 = self.cluster.nodes;
        let identity =
            active_list.len() == n0 && active_list.iter().enumerate().all(|(i, &p)| i == p);
        let new_place: Vec<usize> = if identity {
            (0..n0).collect()
        } else {
            let weights: Vec<f64> = active_list.iter().map(|&p| self.hw_weight[p]).collect();
            let bounds = crate::partition::weighted_bounds(&self.logical_loads, &weights);
            let mut place = vec![0usize; n0];
            for (k, &phys) in active_list.iter().enumerate() {
                for slot in place.iter_mut().take(bounds[k + 1]).skip(bounds[k]) {
                    *slot = phys;
                }
            }
            place
        };
        // Migrate every partition whose host changed; concurrent
        // migrations overlap, so the barrier stalls for the slowest
        // (src, dst) link, not the sum.
        let mut moved: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
        for (l, &to) in new_place.iter().enumerate() {
            let from = self.place[l];
            if from == to {
                continue;
            }
            self.rebalance.migrated_vertices += self.logical_vertices[l];
            let bytes = self.logical_mem[l];
            if bytes == 0 {
                continue;
            }
            self.rebalance.migrated_bytes += bytes;
            self.mem[from].free(bytes);
            self.mem[to]
                .alloc(bytes, "rebalance:migrate")
                .map_err(SimError::from)?;
            let entry = moved.entry((from, to)).or_insert((0, 0));
            entry.0 += bytes;
            entry.1 += crate::router::packets_for(bytes);
        }
        for (&(from, to), &(bytes, msgs)) in &moved {
            // Bulk state transfer: wire bytes without comm-layer CPU
            // (zero-copy shipping of already-serialized partition
            // state), charged after this step's comm fold so migration
            // cost lands on the rebalance lane, not the comm lane.
            self.step_bytes[from] += bytes;
            self.step_raw_bytes[from] += bytes;
            self.step_msgs[from] += msgs;
            self.node_sent_bytes[from] += bytes;
            self.matrix.record(from, to, bytes, msgs);
            let nic = self.hw_nic[from].max(self.hw_nic[to]);
            let t = self.profile.comm.transfer_seconds(bytes, msgs) * nic;
            stall = stall.max(t);
        }
        self.place = new_place;
        Ok(stall)
    }

    /// Marks the end of one *algorithm* iteration (may span several BSP
    /// steps, e.g. Giraph superstep splitting).
    pub fn end_iteration(&mut self) {
        self.iterations += 1;
    }

    /// Simulated seconds elapsed so far.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Finalizes the run into a report. Any metering not yet folded by an
    /// [`Sim::end_step`] is flushed as a final step first. A fault firing
    /// during that flush is ignored: the algorithm's results already
    /// exist at this point, so a failure "during" the flush happens after
    /// completion (documented corner case of the fault model).
    pub fn finish(mut self) -> RunReport {
        let pending = self.step_compute.iter().any(|&c| c > 0.0)
            || self.step_bytes.iter().any(|&b| b > 0)
            || self.step_msgs.iter().any(|&m| m > 0)
            || self.step_wait.iter().any(|&w| w > 0.0);
        if pending {
            let _ = self.end_step();
        }
        let total_core_seconds =
            self.clock * self.cluster.nodes as f64 * f64::from(self.cluster.hw.cores);
        let cpu_utilization = if total_core_seconds > 0.0 {
            (self.busy_core_seconds / total_core_seconds).min(1.0)
        } else {
            0.0
        };
        if self.elastic {
            let now = self.active_nodes() as u32;
            self.rebalance.peak_nodes = self.rebalance.peak_nodes.max(now);
            self.rebalance.final_nodes = now;
        }
        RunReport {
            sim_seconds: self.clock,
            steps: self.steps,
            iterations: self.iterations.max(1),
            nodes: self.cluster.nodes,
            cpu_utilization,
            peak_mem_bytes: self.mem.iter().map(|m| m.peak()).max().unwrap_or(0),
            compute_seconds: self.compute_seconds,
            comm_seconds: self.comm_seconds,
            traffic: self.traffic,
            matrix: self.matrix,
            node_sent_bytes: self.node_sent_bytes,
            total_work: self.total_work,
            timeline: self.timeline,
            recovery: self.recovery,
            retransmit: self.retransmit,
            rebalance: self.rebalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::ClusterSpec;

    fn sim4() -> Sim {
        Sim::new(ClusterSpec::paper(4), ExecProfile::native())
    }

    #[test]
    fn streaming_work_is_bandwidth_bound() {
        let sim = Sim::new(ClusterSpec::single(), ExecProfile::native());
        // 85 GB at 85 GB/s = 1 second
        let t = sim.compute_seconds_for(Work::stream(85_000_000_000));
        assert!((t - 1.0).abs() < 1e-6, "t={t}");
    }

    #[test]
    fn random_access_depends_on_prefetch() {
        let native = Sim::new(ClusterSpec::single(), ExecProfile::native());
        let mut no_prefetch_profile = ExecProfile::native();
        no_prefetch_profile.sw_prefetch = false;
        let plain = Sim::new(ClusterSpec::single(), no_prefetch_profile);
        let w = Work::random(1_000_000_000);
        let fast = native.compute_seconds_for(w);
        let slow = plain.compute_seconds_for(w);
        // without prefetch, latency binds (MLP 2); with prefetch the
        // roofline moves to the line-traffic bandwidth ceiling — the
        // Fig 7 prefetch lever, worth ~2.5x on pure gathers.
        let ratio = slow / fast;
        assert!(ratio > 2.0 && ratio < 4.0, "ratio {ratio}");
        // prefetched gathers are bandwidth-bound: 64 B/line at 85 GB/s
        let bw_bound = 1_000_000_000.0 * 64.0 / 85.0e9;
        assert!(
            (fast - bw_bound).abs() / bw_bound < 1e-6,
            "fast {fast} vs {bw_bound}"
        );
    }

    #[test]
    fn binding_resource_wins() {
        let sim = Sim::new(ClusterSpec::single(), ExecProfile::native());
        let w = Work {
            seq_bytes: 85_000_000_000,
            rand_accesses: 1,
            flops: 1,
        };
        let t = sim.compute_seconds_for(w);
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    fn work_multiplier_scales_time() {
        let mut p = ExecProfile::native();
        p.work_multiplier = 3.0;
        let sim = Sim::new(ClusterSpec::single(), p);
        let base = Sim::new(ClusterSpec::single(), ExecProfile::native());
        let w = Work::stream(1 << 30);
        assert!((sim.compute_seconds_for(w) / base.compute_seconds_for(w) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn step_takes_max_over_nodes() {
        let mut sim = sim4();
        sim.charge(0, Work::stream(85_000_000_000)); // 1 s
        sim.charge(1, Work::stream(8_500_000_000)); // 0.1 s
        sim.end_step().unwrap();
        let c = sim.clock();
        assert!((c - 1.0).abs() < 1e-3, "clock {c}");
    }

    #[test]
    fn overlap_hides_communication() {
        let mut with = Sim::new(ClusterSpec::paper(2), ExecProfile::native());
        let mut without_profile = ExecProfile::native();
        without_profile.overlap = false;
        let mut without = Sim::new(ClusterSpec::paper(2), without_profile);
        for sim in [&mut with, &mut without] {
            sim.charge(0, Work::stream(85_000_000_000)); // 1 s compute
            sim.send(0, 5_500_000_000, 5_500_000_000, 1); // 1 s comm
            sim.end_step().unwrap();
        }
        assert!(
            (with.clock() - 1.0).abs() < 1e-3,
            "overlap {}",
            with.clock()
        );
        assert!(
            (without.clock() - 2.0).abs() < 1e-3,
            "no overlap {}",
            without.clock()
        );
    }

    #[test]
    fn per_step_overhead_accumulates() {
        let mut p = ExecProfile::native();
        p.per_step_overhead_s = 0.5;
        let mut sim = Sim::new(ClusterSpec::single(), p);
        for _ in 0..4 {
            sim.end_step().unwrap();
        }
        assert!((sim.clock() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_reflects_core_fraction_and_idle() {
        // full compute with all cores → utilization ≈ 1
        let mut sim = Sim::new(ClusterSpec::single(), ExecProfile::native());
        sim.charge(0, Work::stream(85_000_000_000));
        sim.end_step().unwrap();
        let r = sim.finish();
        assert!(r.cpu_utilization > 0.9, "util {}", r.cpu_utilization);

        // Giraph-style 4/24 cores cannot exceed ~16%
        let mut p = ExecProfile::giraph();
        p.per_step_overhead_s = 0.0;
        let mut sim = Sim::new(ClusterSpec::single(), p);
        sim.charge(0, Work::flops(1 << 34));
        sim.end_step().unwrap();
        let r = sim.finish();
        assert!(
            r.cpu_utilization <= 4.0 / 24.0 + 1e-9,
            "util {}",
            r.cpu_utilization
        );
    }

    #[test]
    fn traffic_recorded_with_peak_bw() {
        let mut sim = sim4();
        sim.send(0, 5_500_000_000, 11_000_000_000, 10);
        sim.send(1, 1_000, 1_000, 1);
        sim.end_step().unwrap();
        let r = sim.finish();
        assert_eq!(r.traffic.bytes_sent, 5_500_001_000);
        assert_eq!(r.traffic.messages, 11);
        assert!((r.traffic.compression_ratio() - 11_000_001_000.0 / 5_500_001_000.0).abs() < 1e-9);
        // busiest node sent 5.5GB over ~1s step → ~5.5 GB/s peak
        assert!(
            r.traffic.peak_bw_bps > 5.0e9,
            "peak {}",
            r.traffic.peak_bw_bps
        );
    }

    #[test]
    fn send_to_records_the_traffic_matrix() {
        let mut sim = sim4();
        sim.send_to(0, 1, 1000, 1000, 2);
        sim.send_to(0, 2, 500, 500, 1);
        sim.send_to(3, 0, 8, 8, 1);
        sim.send(1, 64, 64, 1); // destination-blind: metered but matrix-blind
        sim.end_step().unwrap();
        let r = sim.finish();
        assert_eq!(r.matrix.bytes(0, 1), 1000);
        assert_eq!(r.matrix.messages(0, 1), 2);
        assert_eq!(r.matrix.row_bytes(0), 1500);
        assert_eq!(r.matrix.total_bytes(), 1508);
        assert_eq!(r.traffic.bytes_sent, 1572);
        assert_eq!(r.node_sent_bytes, vec![1500, 64, 0, 8]);
    }

    #[test]
    fn matrix_reflects_fault_retransmission() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,drop=1").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::native())
        });
        sim.send_to(0, 1, 1000, 1000, 1);
        sim.end_step().unwrap();
        let r = sim.finish();
        assert_eq!(r.traffic.bytes_sent, 2000, "retransmission doubles");
        assert_eq!(r.matrix.bytes(0, 1), 2000, "matrix sees the doubling");
        assert_eq!(r.node_sent_bytes[0], 2000);
        assert_eq!(r.matrix.row_bytes(0), r.node_sent_bytes[0]);
    }

    #[test]
    fn oom_propagates_with_node_and_label() {
        let mut sim = Sim::new(ClusterSpec::paper(2), ExecProfile::native());
        let cap = ClusterSpec::paper(2).hw.mem_capacity_bytes;
        sim.alloc(1, cap - 10, "graph").unwrap();
        let err = sim.alloc(1, 100, "spgemm:A2").unwrap_err();
        match err {
            SimError::OutOfMemory(o) => {
                assert_eq!(o.node, 1);
                assert_eq!(o.label, "spgemm:A2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn iterations_tracked_independently_of_steps() {
        let mut sim = sim4();
        for i in 0..6 {
            sim.end_step().unwrap();
            if i % 2 == 1 {
                sim.end_iteration();
            }
        }
        let r = sim.finish();
        assert_eq!(r.steps, 6);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn timeline_reconciles_bit_exactly_with_and_without_overlap() {
        for overlap in [true, false] {
            let mut p = ExecProfile::native();
            p.overlap = overlap;
            p.per_step_overhead_s = 0.002;
            let mut sim = Sim::new(ClusterSpec::paper(4), p);
            for i in 0..7u64 {
                sim.charge(0, Work::stream(1_000_000_000 + i * 333_333_333));
                sim.charge(1, Work::random(10_000_000 * (i + 1)));
                sim.send(0, 50_000_000 * (i + 1), 90_000_000, 7);
                sim.send(2, 11_111_111, 11_111_111, 3);
                sim.end_step().unwrap();
            }
            let r = sim.finish();
            assert_eq!(r.timeline.len(), 7);
            assert_eq!(
                r.timeline.total_seconds(),
                r.sim_seconds,
                "per-step sums must equal sim_seconds bit-exactly (overlap={overlap})"
            );
            assert_eq!(r.timeline.total_bytes(), r.traffic.bytes_sent);
            assert_eq!(r.timeline.nodes, r.nodes);
        }
    }

    #[test]
    fn overlap_exposes_only_uncovered_comm_in_timeline() {
        let mut sim = Sim::new(ClusterSpec::paper(2), ExecProfile::native());
        sim.charge(0, Work::stream(85_000_000_000)); // 1 s compute
        sim.send(0, 11_000_000_000, 11_000_000_000, 1); // 2 s comm
        sim.end_step().unwrap();
        let r = sim.finish();
        let step = &r.timeline.steps[0];
        assert!((step.compute_s - 1.0).abs() < 1e-3, "{}", step.compute_s);
        // overlap hides 1 s of the 2 s transfer: ~1 s exposed
        assert!((step.comm_s - 1.0).abs() < 1e-2, "{}", step.comm_s);
        // report keeps the *raw* comm seconds
        assert!((r.comm_seconds - 2.0).abs() < 1e-2, "{}", r.comm_seconds);
    }

    #[test]
    fn phase_labels_steps_until_changed() {
        let mut sim = sim4();
        sim.end_step().unwrap(); // before any phase() call
        sim.phase("build");
        sim.end_step().unwrap();
        sim.phase("iterate");
        sim.end_step().unwrap();
        sim.end_step().unwrap();
        let r = sim.finish();
        let phases: Vec<&str> = r.timeline.steps.iter().map(|s| s.phase.as_str()).collect();
        assert_eq!(phases, [DEFAULT_PHASE, "build", "iterate", "iterate"]);
        let breakdown = r.timeline.phase_breakdown();
        assert_eq!(breakdown.len(), 3);
        assert_eq!(breakdown[2].steps, 2);
    }

    #[test]
    fn timeline_records_memory_watermark() {
        let mut sim = sim4();
        sim.alloc(0, 1000, "a").unwrap();
        sim.end_step().unwrap();
        sim.alloc(1, 5000, "b").unwrap();
        sim.end_step().unwrap();
        sim.free(1, 5000);
        sim.end_step().unwrap();
        let r = sim.finish();
        let marks: Vec<u64> = r.timeline.steps.iter().map(|s| s.mem_peak_bytes).collect();
        assert_eq!(marks, [1000, 5000, 5000], "watermark is monotone");
        assert_eq!(r.timeline.peak_mem_bytes(), r.peak_mem_bytes);
    }

    #[test]
    fn straggler_slows_the_step_and_is_counted() {
        use crate::faults::{with_faults, FaultPlan};
        let charges = |sim: &mut Sim| {
            sim.charge(0, Work::stream(8_500_000_000)); // 0.1 s
            sim.charge(0, Work::stream(8_500_000_000)); // again: one event
            sim.end_step().unwrap();
        };
        let mut p = ExecProfile::native();
        p.per_step_overhead_s = 0.0;
        let mut base = Sim::new(ClusterSpec::paper(2), p);
        charges(&mut base);
        // probability 1 ⇒ every (node, step) is a straggler
        let plan = FaultPlan::parse("seed=1,straggler=1x4").unwrap();
        let mut slow = with_faults(plan, || Sim::new(ClusterSpec::paper(2), p));
        charges(&mut slow);
        assert!(
            (slow.clock() / base.clock() - 4.0).abs() < 1e-6,
            "slowdown {} vs base {}",
            slow.clock(),
            base.clock()
        );
        let r = slow.finish();
        assert_eq!(r.recovery.straggler_events, 1, "one slot, counted once");
        assert!(!r.recovery.is_zero());
    }

    #[test]
    fn dropped_sends_retransmit_and_double_traffic() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,drop=1").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::native())
        });
        sim.send(0, 1000, 2000, 3);
        sim.end_step().unwrap();
        let r = sim.finish();
        assert_eq!(r.traffic.bytes_sent, 2000, "wire bytes doubled");
        assert_eq!(r.traffic.messages, 6);
        assert_eq!(r.recovery.dropped_sends, 1);
        assert_eq!(r.recovery.retransmitted_bytes, 1000);
    }

    #[test]
    fn mem_pressure_makes_a_fitting_alloc_oom() {
        use crate::faults::{with_faults, FaultPlan};
        let cap = ClusterSpec::paper(1).hw.mem_capacity_bytes;
        // pressure bytes equal to capacity guarantee the OOM
        let plan = FaultPlan::parse(&format!("seed=1,mempress=1:{cap}")).unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::single(), ExecProfile::native())
        });
        let err = sim.alloc(0, 1024, "ranks").unwrap_err();
        match err {
            SimError::OutOfMemory(o) => {
                assert_eq!(o.node, 0);
                assert!(o.label.ends_with("+mem-pressure"), "label {}", o.label);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn checkpoints_cost_disk_writes_every_k_steps() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,ckpt=2").unwrap();
        let mut p = ExecProfile::giraph();
        p.per_step_overhead_s = 0.0;
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), p));
        let disk_bw = sim.cluster().hw.disk_bw_bps;
        sim.alloc(0, 2_000_000_000, "state").unwrap();
        for _ in 0..4 {
            sim.end_step().unwrap();
        }
        let r = sim.finish();
        assert_eq!(r.recovery.checkpoints, 2, "steps 2 and 4 checkpoint");
        assert_eq!(r.recovery.checkpoint_bytes, 4_000_000_000);
        let per_ckpt = 2_000_000_000.0 / disk_bw;
        assert!((r.recovery.checkpoint_seconds - 2.0 * per_ckpt).abs() < 1e-9);
        let marks: Vec<f64> = r.timeline.steps.iter().map(|s| s.recovery_s).collect();
        assert_eq!(marks.len(), 4);
        assert_eq!(marks[0], 0.0);
        assert!(marks[1] > 0.0 && marks[3] > 0.0 && marks[2] == 0.0);
        assert_eq!(
            r.timeline.total_seconds(),
            r.sim_seconds,
            "recovery lane must reconcile bit-exactly"
        );
    }

    #[test]
    fn node_failure_rolls_back_to_the_last_checkpoint() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,ckpt=2,kill=0@3").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::giraph())
        });
        sim.alloc(0, 1_000_000_000, "state").unwrap();
        for i in 0..5u64 {
            sim.charge(0, Work::stream(1_000_000_000 * (i + 1)));
            sim.end_step().unwrap();
        }
        let r = sim.finish();
        assert_eq!(r.recovery.failures, 1);
        // checkpoint covers steps 0..2; failed step 3 replays step 2 + itself
        assert_eq!(r.recovery.steps_replayed, 2);
        let disk_bw = ClusterSpec::paper(2).hw.disk_bw_bps;
        assert_eq!(r.recovery.restore_seconds, 1_000_000_000.0 / disk_bw);
        // replayed seconds reconcile bit-exactly with the timeline
        let failed = &r.timeline.steps[3];
        let base3 = failed.compute_s + failed.comm_s + failed.barrier_s;
        let expected_replay = r.timeline.steps[2].duration_s() + base3;
        assert_eq!(r.recovery.replay_seconds, expected_replay);
        assert_eq!(r.timeline.total_seconds(), r.sim_seconds);
        let lane_sum: f64 = r.timeline.steps.iter().map(|s| s.recovery_s).sum();
        assert!((lane_sum - r.recovery.recovery_seconds()).abs() < 1e-12);
    }

    #[test]
    fn failure_before_any_checkpoint_replays_from_scratch() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,ckpt=10,kill=1@2").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::giraph())
        });
        for _ in 0..3 {
            sim.charge(1, Work::stream(1_000_000_000));
            sim.end_step().unwrap();
        }
        let r = sim.finish();
        assert_eq!(r.recovery.failures, 1);
        assert_eq!(r.recovery.restore_seconds, 0.0, "no checkpoint to read");
        assert_eq!(r.recovery.steps_replayed, 3, "steps 0 and 1 plus step 2");
    }

    #[test]
    fn fail_stop_profile_surfaces_node_failure() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,kill=0@1").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::native())
        });
        sim.end_step().unwrap();
        let err = sim.end_step().unwrap_err();
        assert_eq!(err, SimError::NodeFailed { node: 0, step: 1 });
        assert!(err.to_string().contains("fail-stop"));
    }

    #[test]
    fn checkpoint_staging_buffer_can_oom() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,ckpt=1").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::single(), ExecProfile::giraph())
        });
        // fill memory beyond 4/5 of capacity: in_use + in_use/4 > capacity
        let cap = sim.cluster().hw.mem_capacity_bytes;
        sim.alloc(0, cap - cap / 8, "state").unwrap();
        let err = sim.end_step().unwrap_err();
        match err {
            SimError::OutOfMemory(o) => assert_eq!(o.label, "checkpoint:staging"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn inactive_plan_leaves_reports_bit_identical() {
        use crate::faults::{with_faults, FaultPlan};
        let run = || {
            let mut sim = Sim::new(ClusterSpec::paper(2), ExecProfile::giraph());
            for i in 0..3u64 {
                sim.charge(0, Work::stream(1_000_000_000 + i));
                sim.send(1, 10_000 + i, 20_000, 5);
                sim.end_step().unwrap();
            }
            sim.finish()
        };
        let plain = run();
        let gated = with_faults(FaultPlan::none(), run);
        assert_eq!(plain, gated);
        assert!(plain.recovery.is_zero());
    }

    #[test]
    fn link_drop_retransmits_with_exponential_backoff() {
        use crate::faults::{with_faults, FaultPlan};
        // linkdrop=1: every attempt short of the cap is lost
        let plan = FaultPlan::parse("seed=1,linkdrop=1").unwrap();
        let mut p = ExecProfile::native();
        p.per_step_overhead_s = 0.0;
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), p));
        sim.send_to(0, 1, 1000, 1000, 1);
        sim.end_step().unwrap();
        let r = sim.finish();
        let retries = u64::from(MAX_SEND_ATTEMPTS - 1);
        assert_eq!(r.retransmit.retransmits, retries);
        assert_eq!(r.retransmit.retransmitted_bytes, 1000 * retries);
        // 1 heartbeat + original + 15 retransmissions hit the wire
        assert_eq!(
            r.traffic.bytes_sent,
            1000 * (retries + 1) + HEARTBEAT_WIRE_BYTES
        );
        assert_eq!(r.matrix.bytes(0, 1), 1000 * (retries + 1));
        assert_eq!(r.matrix.row_bytes(0), r.node_sent_bytes[0]);
        // backoff: rto × (2^0 + 2^1 + ... + 2^14)
        let rto = p.retransmit_timeout_s;
        let expected_wait = rto * f64::from((1u32 << (MAX_SEND_ATTEMPTS - 1)) - 1);
        assert!(
            (r.retransmit.timeout_seconds - expected_wait).abs() < 1e-12,
            "waited {} expected {expected_wait}",
            r.retransmit.timeout_seconds
        );
        let lane: f64 = r.timeline.steps.iter().map(|s| s.resilience_s).sum();
        assert_eq!(lane, r.retransmit.timeout_seconds, "resilience lane sum");
        assert_eq!(r.timeline.total_seconds(), r.sim_seconds, "bit-exact clock");
    }

    #[test]
    fn duplicated_deliveries_double_the_transfer() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,dup=1").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::native())
        });
        sim.send_to(0, 1, 500, 500, 2);
        sim.end_step().unwrap();
        let r = sim.finish();
        assert_eq!(r.retransmit.duplicates, 1);
        assert_eq!(r.retransmit.duplicate_bytes, 500);
        assert_eq!(r.matrix.bytes(0, 1), 1000);
        assert_eq!(r.matrix.messages(0, 1), 4);
        assert_eq!(
            r.retransmit.timeout_seconds, 0.0,
            "dups cost bytes, not time"
        );
    }

    #[test]
    fn slow_link_charges_excess_wire_time_on_its_direction_only() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("slowlink=0-1:3").unwrap();
        let mut p = ExecProfile::native();
        p.per_step_overhead_s = 0.0;
        p.overlap = false;
        let run = |src: usize, dst: usize| {
            let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), p));
            sim.send_to(src, dst, 1_000_000_000, 1_000_000_000, 1);
            sim.end_step().unwrap();
            sim.finish()
        };
        let slowed = run(0, 1);
        let healthy = run(1, 0);
        let wire_s = p.comm.transfer_seconds(1_000_000_000, 1);
        let lane: f64 = slowed.timeline.steps.iter().map(|s| s.resilience_s).sum();
        assert!(
            (lane - 2.0 * wire_s).abs() < 1e-12,
            "3× link ⇒ 2× excess, got {lane} vs {}",
            2.0 * wire_s
        );
        let lane_rev: f64 = healthy.timeline.steps.iter().map(|s| s.resilience_s).sum();
        assert_eq!(lane_rev, 0.0, "reverse direction is healthy");
        assert!(slowed.sim_seconds > healthy.sim_seconds);
    }

    #[test]
    fn heartbeats_flow_only_under_link_faults() {
        use crate::faults::{with_faults, FaultPlan};
        // factor-1 slow link: enables the lossy-link plane at zero cost
        let plan = FaultPlan::parse("slowlink=0-1:1").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(4), ExecProfile::native())
        });
        sim.end_step().unwrap();
        sim.end_step().unwrap();
        let r = sim.finish();
        assert_eq!(r.retransmit.heartbeats, 6, "3 workers × 2 steps");
        assert_eq!(r.retransmit.heartbeat_bytes, 6 * HEARTBEAT_WIRE_BYTES);
        assert_eq!(r.traffic.bytes_sent, 6 * HEARTBEAT_WIRE_BYTES);
        assert_eq!(r.matrix.bytes(1, 0), 2 * HEARTBEAT_WIRE_BYTES);

        // no link terms ⇒ no heartbeats, even with other faults active
        let plain = FaultPlan::parse("seed=1,straggler=0.5x2,ckpt=2").unwrap();
        let mut sim = with_faults(plain, || {
            Sim::new(ClusterSpec::paper(4), ExecProfile::native())
        });
        sim.end_step().unwrap();
        let r = sim.finish();
        assert!(r.retransmit.is_zero());
    }

    #[test]
    fn failure_detection_latency_precedes_rollback() {
        use crate::faults::{with_faults, FaultPlan};
        let lossy = FaultPlan::parse("seed=1,ckpt=2,kill=0@3,slowlink=0-1:1").unwrap();
        let instant = FaultPlan::parse("seed=1,ckpt=2,kill=0@3").unwrap();
        let run = |plan: FaultPlan| {
            let mut sim = with_faults(plan, || {
                Sim::new(ClusterSpec::paper(2), ExecProfile::giraph())
            });
            sim.alloc(0, 1_000_000_000, "state").unwrap();
            for i in 0..5u64 {
                sim.charge(0, Work::stream(1_000_000_000 * (i + 1)));
                sim.end_step().unwrap();
            }
            sim.finish()
        };
        let detected = run(lossy);
        let legacy = run(instant);
        let p = ExecProfile::giraph();
        let expect = f64::from(p.heartbeat_miss_beats) * p.heartbeat_period_s;
        assert_eq!(detected.retransmit.suspicions, 1);
        assert_eq!(
            detected.retransmit.missed_beats,
            u64::from(p.heartbeat_miss_beats)
        );
        assert_eq!(detected.retransmit.detection_seconds, expect);
        assert_eq!(
            legacy.retransmit.detection_seconds, 0.0,
            "instant fail-stop path"
        );
        // the recovery lane carries detection + restore + replay
        let lane: f64 = detected.timeline.steps.iter().map(|s| s.recovery_s).sum();
        assert!(
            (lane - (detected.recovery.recovery_seconds() + detected.retransmit.detection_seconds))
                .abs()
                < 1e-9,
            "lane {lane}"
        );
        assert_eq!(detected.timeline.total_seconds(), detected.sim_seconds);
    }

    #[test]
    fn fail_stop_still_applies_under_link_faults() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,kill=0@0,slowlink=0-1:1").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::native())
        });
        let err = sim.end_step().unwrap_err();
        assert_eq!(err, SimError::NodeFailed { node: 0, step: 0 });
    }

    #[test]
    fn explicit_zero_linkdrop_is_bit_identical_to_no_clause() {
        use crate::faults::{with_faults, FaultPlan};
        let with_zero = FaultPlan::parse("seed=1,straggler=0.3x2,linkdrop=0").unwrap();
        let without = FaultPlan::parse("seed=1,straggler=0.3x2").unwrap();
        assert_eq!(with_zero, without);
        assert_eq!(with_zero.key(), without.key());
        let run = |plan: FaultPlan| {
            let mut sim = with_faults(plan, || {
                Sim::new(ClusterSpec::paper(2), ExecProfile::giraph())
            });
            for i in 0..3u64 {
                sim.charge(0, Work::stream(1_000_000_000 + i));
                sim.send_to(0, 1, 10_000 + i, 20_000, 5);
                sim.end_step().unwrap();
            }
            sim.finish()
        };
        let a = run(with_zero);
        let b = run(without);
        assert_eq!(a, b);
        assert!(a.retransmit.is_zero());
    }

    #[test]
    fn raising_link_drop_never_removes_retransmissions() {
        use crate::faults::{with_faults, FaultPlan};
        let run = |prob: &str| {
            let plan = FaultPlan::parse(&format!("seed=9,linkdrop={prob}")).unwrap();
            let mut sim = with_faults(plan, || {
                Sim::new(ClusterSpec::paper(4), ExecProfile::native())
            });
            for i in 0..200u64 {
                sim.send_to((i % 3) as usize, 3, 100, 100, 1);
                sim.end_step().unwrap();
            }
            sim.finish()
        };
        let lo = run("0.05");
        let hi = run("0.4");
        assert!(lo.retransmit.retransmits > 0);
        assert!(hi.retransmit.retransmits > lo.retransmit.retransmits);
        assert!(hi.retransmit.retransmitted_bytes > lo.retransmit.retransmitted_bytes);
    }

    #[test]
    fn speculative_reexecution_charges_buddy_not_slowdown() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,straggler=1x8,slowlink=0-1:1").unwrap();
        let p = {
            let mut p = ExecProfile::graphlab();
            p.per_step_overhead_s = 0.0;
            p
        };
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), p));
        assert!(sim.speculation_active());
        assert!(sim.straggler_at(0).is_some(), "prob 1 ⇒ always a straggler");
        let w = Work::stream(8_500_000_000); // 0.1 s un-slowed
        sim.charge_speculated(0, 1, w, 42);
        sim.end_step().unwrap();
        let r = sim.finish();
        // both nodes paid the un-slowed time; the step is ~0.1 s, not 0.8 s
        let base = Sim::new(ClusterSpec::paper(2), p).compute_seconds_for(w);
        let step = &r.timeline.steps[0];
        assert!((step.compute_s - base).abs() < 1e-9, "{}", step.compute_s);
        assert_eq!(r.retransmit.speculative_reexecs, 1);
        assert_eq!(r.retransmit.suppressed_duplicates, 42);
        assert!((r.retransmit.speculative_seconds - base).abs() < 1e-12);
        assert_eq!(r.recovery.straggler_events, 1);
        // the work itself was executed twice (plus node 1's heartbeat,
        // which the socket layer meters as streamed bytes)
        assert_eq!(
            r.total_work.seq_bytes,
            2 * 8_500_000_000 + HEARTBEAT_WIRE_BYTES
        );
    }

    #[test]
    fn socket_cpu_handling_charged() {
        let mut p = ExecProfile::graphlab();
        p.per_step_overhead_s = 0.0;
        p.overlap = false;
        let mut sim = Sim::new(ClusterSpec::paper(2), p);
        sim.send(0, 85_000_000_000, 85_000_000_000, 1);
        sim.end_step().unwrap();
        // socket layer charges 1 stream byte per wire byte → 1 s compute
        let r = sim.finish();
        assert!(
            r.compute_seconds > 0.9,
            "cpu handling {}",
            r.compute_seconds
        );
    }

    fn quiet_native() -> ExecProfile {
        let mut p = ExecProfile::native();
        p.per_step_overhead_s = 0.0;
        p
    }

    #[test]
    fn join_repartitions_and_meters_migration_traffic() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,join=2@1").unwrap();
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), quiet_native()));
        assert_eq!(sim.nodes(), 2, "logical width is fixed");
        // skewed loads: the weighted cut gives heavy partition 0 its own
        // node and pushes light partition 1 onto the fresh node 2
        sim.declare_partition(0, 100, 3000);
        sim.declare_partition(1, 100, 1000);
        sim.alloc(0, 3_000_000, "state").unwrap();
        sim.alloc(1, 3_000_000, "state").unwrap();
        sim.end_step().unwrap(); // step 0: before the join, identity
        assert_eq!(sim.placement(0), 0);
        assert_eq!(sim.placement(1), 1);
        sim.end_step().unwrap(); // barrier ending step 1 admits node 2
        assert_eq!(sim.active_nodes(), 3);
        assert_eq!(sim.placement(0), 0);
        assert_eq!(sim.placement(1), 2, "light partition moved to joiner");
        let r = sim.finish();
        assert_eq!(r.rebalance.joins, 1);
        assert_eq!(r.rebalance.rebalances, 1);
        assert_eq!(r.rebalance.final_nodes, 3);
        assert_eq!(r.rebalance.peak_nodes, 3);
        assert_eq!(r.rebalance.migrated_bytes, 3_000_000);
        assert_eq!(r.rebalance.migrated_vertices, 100);
        // migration bytes land in the traffic matrix and per-node totals
        assert_eq!(r.matrix.total_bytes(), r.rebalance.migrated_bytes);
        for from in 0..3 {
            assert_eq!(r.matrix.row_bytes(from), r.node_sent_bytes[from]);
        }
        // the stall is visible on the rebalance lane, and only there
        let lane: f64 = r.timeline.steps.iter().map(|s| s.rebalance_s).sum();
        assert!(lane > 0.0, "migration must stall the barrier");
        assert_eq!(lane, r.rebalance.stall_seconds);
        assert_eq!(r.timeline.total_seconds(), r.sim_seconds);
    }

    #[test]
    fn graceful_leave_drains_and_consolidates_state() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,leave=1@1").unwrap();
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), quiet_native()));
        sim.alloc(1, 5_000_000, "state").unwrap();
        sim.end_step().unwrap();
        sim.send_to(1, 0, 1_000, 1_000, 7); // the leaver's final messages
        sim.end_step().unwrap(); // barrier ending step 1: node 1 departs
        assert_eq!(sim.active_nodes(), 1);
        assert_eq!(sim.placement(1), 0, "partition 1 now lives on node 0");
        // physical memory followed the partition
        assert_eq!(sim.mem_in_use(1), sim.mem_in_use(0));
        let r = sim.finish();
        assert_eq!(r.rebalance.leaves, 1);
        assert_eq!(r.rebalance.final_nodes, 1);
        assert_eq!(r.rebalance.migrated_bytes, 5_000_000);
        // drain = the leaver's last-step message count (1 data + 1
        // heartbeat packet)
        assert!(r.rebalance.drained_messages >= 7);
        assert_eq!(r.matrix.bytes(1, 0), 1_000 + 5_000_000);
    }

    #[test]
    fn symmetric_join_then_leave_restores_identity_placement() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,join=2@1,leave=2@3").unwrap();
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), quiet_native()));
        sim.alloc(0, 1_000_000, "state").unwrap();
        sim.alloc(1, 1_000_000, "state").unwrap();
        for _ in 0..5 {
            sim.charge(0, Work::stream(1_000_000));
            sim.end_step().unwrap();
        }
        // grown then shrunk back: the active set is {0,1} again, and the
        // placement rule makes that the identity — exactly the static
        // layout, so engine state lands where a static run would put it.
        assert_eq!(sim.active_nodes(), 2);
        assert_eq!(sim.placement(0), 0);
        assert_eq!(sim.placement(1), 1);
        let r = sim.finish();
        assert_eq!(r.rebalance.joins, 1);
        assert_eq!(r.rebalance.leaves, 1);
        assert_eq!(r.rebalance.rebalances, 2);
        assert_eq!(r.rebalance.peak_nodes, 3);
        assert_eq!(r.rebalance.final_nodes, 2);
    }

    #[test]
    fn join_warm_starts_from_the_last_checkpoint() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,ckpt=1,join=2@2").unwrap();
        let mut sim = with_faults(plan, || {
            Sim::new(ClusterSpec::paper(2), ExecProfile::giraph())
        });
        sim.alloc(0, 1_000_000_000, "state").unwrap();
        for _ in 0..4 {
            sim.end_step().unwrap();
        }
        let r = sim.finish();
        assert_eq!(r.rebalance.joins, 1);
        let disk_bw = ClusterSpec::paper(2).hw.disk_bw_bps;
        // the joiner restores the 1 GB checkpoint before serving
        assert_eq!(r.rebalance.warmstart_seconds, 1_000_000_000.0 / disk_bw);
        assert!(r.rebalance.stall_seconds >= r.rebalance.warmstart_seconds);
    }

    #[test]
    fn oldgen_node_doubles_compute_and_owns_less_graph() {
        use crate::faults::{with_faults, FaultPlan};
        let run = |spec: &str| {
            let plan = FaultPlan::parse(spec).unwrap();
            let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), quiet_native()));
            sim.charge(1, Work::stream(85_000_000_000)); // 1 s on paper hw
            sim.end_step().unwrap();
            sim.finish()
        };
        let slow = run("seed=1,hw=1:oldgen");
        let base = run("seed=1,hw=1:standard");
        assert!((base.sim_seconds - 1.0).abs() < 1e-6);
        assert!(
            (slow.sim_seconds - 2.0).abs() < 1e-6,
            "oldgen 2x: {}",
            slow.sim_seconds
        );
        // and the repartitioner would give it half the edges
        assert_eq!(crate::NodeProfile::OldGen.capacity_weight(), 0.5);
    }

    #[test]
    fn slownic_node_quadruples_wire_time_only() {
        use crate::faults::{with_faults, FaultPlan};
        let run = |spec: &str| {
            let plan = FaultPlan::parse(spec).unwrap();
            let mut p = quiet_native();
            p.overlap = false;
            let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), p));
            sim.send_to(1, 0, 5_500_000_000, 5_500_000_000, 1); // 1 s healthy
            sim.end_step().unwrap();
            sim.finish()
        };
        let throttled = run("seed=1,hw=1:slownic");
        let healthy = run("seed=1,hw=1:standard");
        let ratio = throttled.sim_seconds / healthy.sim_seconds;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
        // bytes on the wire are identical — only the time differs
        assert_eq!(throttled.traffic.bytes_sent, healthy.traffic.bytes_sent);
    }

    #[test]
    fn colocated_partitions_skip_the_wire() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,leave=1@0").unwrap();
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), quiet_native()));
        sim.end_step().unwrap(); // node 1 departs at the first barrier
        assert_eq!(sim.placement(1), 0);
        sim.send_to(0, 1, 4_096, 4_096, 1); // both partitions on node 0
        sim.end_step().unwrap();
        let r = sim.finish();
        assert_eq!(r.rebalance.colocated_bytes, 4_096);
        assert_eq!(r.matrix.bytes(0, 0), 0, "loopback never hits the wire");
        assert_eq!(r.matrix.total_bytes(), 0);
    }

    #[test]
    fn membership_timeline_is_deterministic_across_runs() {
        use crate::faults::{with_faults, FaultPlan};
        let run = || {
            let plan = FaultPlan::parse("seed=7,join=2@1,hw=2:oldgen,leave=1@3").unwrap();
            let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), quiet_native()));
            sim.alloc(0, 2_000_000, "state").unwrap();
            sim.alloc(1, 2_000_000, "state").unwrap();
            for i in 0..5u64 {
                sim.charge((i % 2) as usize, Work::stream(1_000_000 + i));
                sim.send_to(0, 1, 1_000, 2_000, 3);
                sim.end_step().unwrap();
            }
            sim.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "elastic runs replay bit-identically");
        assert_eq!(a.rebalance.joins, 1);
        assert_eq!(a.rebalance.leaves, 1);
    }

    #[test]
    fn non_elastic_plan_has_zero_rebalance_stats() {
        use crate::faults::{with_faults, FaultPlan};
        let plan = FaultPlan::parse("seed=1,straggler=0.5x4").unwrap();
        let mut sim = with_faults(plan, || Sim::new(ClusterSpec::paper(2), quiet_native()));
        sim.charge(0, Work::stream(1_000_000));
        sim.end_step().unwrap();
        let r = sim.finish();
        assert!(r.rebalance.is_zero());
        assert!(r.timeline.steps.iter().all(|s| s.rebalance_s == 0.0));
    }
}
