//! Workloads: a dataset prepared in every representation the four
//! algorithms need.
//!
//! The paper prepares each graph differently per algorithm (§4.1.2):
//! directed for PageRank, symmetrized for BFS, DAG-oriented for triangle
//! counting, bipartite ratings for CF. A [`Workload`] bundles all the
//! views so the runner can hand each engine the right one.

use graphmaze_cluster::SimError;
use graphmaze_datagen::{ratings, rmat, Dataset, RatingsGenConfig, RmatConfig, RmatParams};
use graphmaze_graph::csr::Csr;
use graphmaze_graph::{DirectedGraph, EdgeList, RatingsGraph, UndirectedGraph};
use graphmaze_native::triangle::orient_and_sort;

/// A named dataset in all algorithm-specific representations.
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Directed view (PageRank).
    pub directed: Option<DirectedGraph>,
    /// Symmetrized view (BFS).
    pub undirected: Option<UndirectedGraph>,
    /// DAG-oriented sorted-adjacency view (triangle counting).
    pub oriented: Option<Csr>,
    /// Bipartite ratings (collaborative filtering).
    pub ratings: Option<RatingsGraph>,
}

impl Workload {
    /// Builds the three graph views from a raw edge list.
    pub fn from_edge_list(name: impl Into<String>, el: &EdgeList) -> Self {
        let directed = DirectedGraph::from_edge_list(el);
        let mut sym = el.clone();
        sym.remove_self_loops();
        sym.symmetrize();
        let undirected = UndirectedGraph::from_symmetric_edge_list(&sym);
        let oriented = orient_and_sort(el);
        Workload {
            name: name.into(),
            directed: Some(directed),
            undirected: Some(undirected),
            oriented: Some(oriented),
            ratings: None,
        }
    }

    /// Wraps a ratings graph (CF-only workload).
    pub fn from_ratings(name: impl Into<String>, g: RatingsGraph) -> Self {
        Workload {
            name: name.into(),
            directed: None,
            undirected: None,
            oriented: None,
            ratings: Some(g),
        }
    }

    /// Generates an RMAT graph workload at `scale` with `edge_factor`.
    pub fn rmat(scale: u32, edge_factor: u32, seed: u64) -> Self {
        let el = rmat::generate(&RmatConfig {
            scale,
            edge_factor,
            params: RmatParams::GRAPH500,
            seed,
            scramble_ids: true,
            threads: 0,
        });
        Self::from_edge_list(format!("rmat-s{scale}-e{edge_factor}"), &el)
    }

    /// Generates the RMAT variant tuned for triangle counting
    /// (`A=0.45, B=C=0.15`, §4.1.2).
    pub fn rmat_triangle(scale: u32, edge_factor: u32, seed: u64) -> Self {
        let el = rmat::generate(&RmatConfig {
            scale,
            edge_factor,
            params: RmatParams::TRIANGLE,
            seed,
            scramble_ids: true,
            threads: 0,
        });
        Self::from_edge_list(format!("rmat-tc-s{scale}-e{edge_factor}"), &el)
    }

    /// Generates a synthetic ratings workload (§4.1.2 fold generator).
    pub fn rmat_ratings(scale: u32, num_items: u32, seed: u64) -> Self {
        let g = ratings::generate(&RatingsGenConfig {
            scale,
            edge_factor: 16,
            num_items,
            min_degree: 5,
            seed,
        });
        Self::from_ratings(format!("cf-s{scale}-i{num_items}"), g)
    }

    /// Instantiates a Table 3 dataset stand-in, scaled down by
    /// `2^scale_down`.
    pub fn from_dataset(ds: Dataset, scale_down: u32, seed: u64) -> Self {
        let name = ds.spec().name.to_string();
        if ds.bipartite() {
            Self::from_ratings(name, ds.generate_ratings(scale_down, seed))
        } else {
            let el = ds.generate_graph(scale_down, seed);
            Self::from_edge_list(name, &el)
        }
    }

    /// True when this workload carries a ratings graph.
    pub fn is_ratings(&self) -> bool {
        self.ratings.is_some()
    }

    /// The directed view (PageRank), or [`SimError::InvalidConfig`] when
    /// this workload doesn't carry one.
    pub fn directed(&self) -> Result<&DirectedGraph, SimError> {
        self.directed
            .as_ref()
            .ok_or_else(|| self.missing_view("directed"))
    }

    /// The symmetrized view (BFS), or [`SimError::InvalidConfig`].
    pub fn undirected(&self) -> Result<&UndirectedGraph, SimError> {
        self.undirected
            .as_ref()
            .ok_or_else(|| self.missing_view("undirected"))
    }

    /// The DAG-oriented view (triangle counting), or
    /// [`SimError::InvalidConfig`].
    pub fn oriented(&self) -> Result<&Csr, SimError> {
        self.oriented
            .as_ref()
            .ok_or_else(|| self.missing_view("oriented"))
    }

    /// The bipartite ratings (CF), or [`SimError::InvalidConfig`].
    pub fn ratings(&self) -> Result<&RatingsGraph, SimError> {
        self.ratings
            .as_ref()
            .ok_or_else(|| self.missing_view("ratings"))
    }

    fn missing_view(&self, view: &str) -> SimError {
        SimError::InvalidConfig(format!("workload '{}' has no {view} graph", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_workload_has_all_graph_views() {
        let wl = Workload::rmat(8, 4, 3);
        assert!(wl.directed.is_some());
        assert!(wl.undirected.is_some());
        assert!(wl.oriented.is_some());
        assert!(wl.ratings.is_none());
        assert!(!wl.is_ratings());
        let o = wl.oriented.as_ref().unwrap();
        assert!(o.neighbors_sorted());
    }

    #[test]
    fn ratings_workload() {
        let wl = Workload::rmat_ratings(9, 64, 3);
        assert!(wl.is_ratings());
        assert!(wl.directed.is_none());
        assert!(wl.ratings.as_ref().unwrap().num_ratings() > 0);
    }

    #[test]
    fn fallible_accessors_mirror_the_option_fields() {
        let wl = Workload::rmat(8, 4, 3);
        assert!(wl.directed().is_ok());
        assert!(wl.undirected().is_ok());
        assert!(wl.oriented().is_ok());
        let err = wl.ratings().unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("ratings"), "{err}");
        assert!(err.to_string().contains(&wl.name), "{err}");

        let wl = Workload::rmat_ratings(9, 64, 3);
        assert!(wl.ratings().is_ok());
        assert!(matches!(wl.directed(), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn dataset_workloads() {
        let wl = Workload::from_dataset(Dataset::FacebookLike, 13, 1);
        assert_eq!(wl.name, "facebook");
        assert!(!wl.is_ratings());
        let wl = Workload::from_dataset(Dataset::NetflixLike, 10, 1);
        assert_eq!(wl.name, "netflix");
        assert!(wl.is_ratings());
    }
}
