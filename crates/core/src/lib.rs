//! # graphmaze-core
//!
//! The front door of the `graphmaze` workspace — a from-scratch Rust
//! reproduction of Satish et al., *Navigating the Maze of Graph
//! Analytics Frameworks using Massive Graph Datasets* (SIGMOD 2014).
//!
//! This crate re-exports the substrate crates and provides the unified
//! benchmark API used by the examples, integration tests and the `repro`
//! harness:
//!
//! ```
//! use graphmaze_core::prelude::*;
//!
//! // a scaled-down LiveJournal-like graph
//! let wl = Workload::from_dataset(Dataset::LiveJournalLike, 14, 7);
//! let params = BenchParams::default();
//! // run PageRank under every framework on a simulated 4-node cluster
//! for fw in Framework::ALL {
//!     match run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params) {
//!         Ok(outcome) => println!(
//!             "{fw:?}: {:.4}s/iter",
//!             outcome.report.seconds_per_iteration()
//!         ),
//!         Err(e) => println!("{fw:?}: {e}"), // e.g. Galois is single-node
//!     }
//! }
//! ```

pub mod cache;
pub mod engine;
pub mod flatjson;
pub mod report;
pub mod request;
pub mod runner;
pub mod sweep;
pub mod workload;

pub use graphmaze_cluster as cluster;
pub use graphmaze_datagen as datagen;
pub use graphmaze_engines as engines;
pub use graphmaze_graph as graph;
pub use graphmaze_metrics as metrics;
pub use graphmaze_native as native;

pub use cache::{CacheStats, CachedOutcome, ResultCache};
pub use engine::Engine;
pub use request::{Provenance, RunRequest, RunResponse};
pub use runner::{run_benchmark, Algorithm, BenchParams, Framework, RunOutcome};
pub use sweep::{
    CellError, CellStatus, SilentObserver, Sweep, SweepCell, SweepEvent, SweepObserver,
    SweepOptions, SweepReport, WorkloadCache, WorkloadSpec, JOURNAL_SCHEMA_VERSION,
};
pub use workload::Workload;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use crate::cache::{CacheStats, ResultCache};
    pub use crate::engine::Engine;
    pub use crate::report::{format_table, geomean};
    pub use crate::request::{Provenance, RunRequest, RunResponse};
    pub use crate::runner::{run_benchmark, Algorithm, BenchParams, Framework, RunOutcome};
    pub use crate::sweep::{
        CellError, CellStatus, SilentObserver, Sweep, SweepCell, SweepEvent, SweepObserver,
        SweepOptions, SweepReport, WorkloadCache, WorkloadSpec,
    };
    pub use crate::workload::Workload;
    pub use graphmaze_cluster::{ClusterSpec, ExecProfile, FaultPlan, NodeFailure, SimError};
    pub use graphmaze_datagen::{Dataset, RatingsGenConfig, RmatConfig, RmatParams};
    pub use graphmaze_graph::{DirectedGraph, EdgeList, RatingsGraph, UndirectedGraph};
    pub use graphmaze_metrics::{RecoveryStats, RunReport};
    pub use graphmaze_native::cf::CfConfig;
    pub use graphmaze_native::{NativeOptions, PAGERANK_R};
}
