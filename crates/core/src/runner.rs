//! The benchmark runner: `algorithm × framework × workload × nodes →
//! RunReport`, the crossbar behind every figure and table of the paper.

use graphmaze_cluster::SimError;
use graphmaze_engines::datalog::socialite;
use graphmaze_engines::spmv::combblas;
use graphmaze_engines::taskpar::galois;
use graphmaze_engines::vertex::{giraph, graphlab};
use graphmaze_metrics::RunReport;
use graphmaze_native::cf::CfConfig;
use graphmaze_native::{bfs, cf, pagerank, triangle, NativeOptions, PAGERANK_R};

use crate::workload::Workload;

/// The paper's four algorithms (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Iterative PageRank, reported per iteration.
    PageRank,
    /// Breadth-first search, reported as overall time.
    Bfs,
    /// Triangle counting, reported as overall time.
    TriangleCount,
    /// Collaborative filtering, reported per iteration.
    CollaborativeFiltering,
}

impl Algorithm {
    /// All four algorithms.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::TriangleCount,
        Algorithm::CollaborativeFiltering,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::PageRank => "pagerank",
            Algorithm::Bfs => "bfs",
            Algorithm::TriangleCount => "triangle",
            Algorithm::CollaborativeFiltering => "cf",
        }
    }

    /// Whether the paper reports time per iteration (vs overall time).
    pub fn per_iteration(&self) -> bool {
        matches!(self, Algorithm::PageRank | Algorithm::CollaborativeFiltering)
    }
}

/// The six implementations compared in Figures 3–5 (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Framework {
    /// Hand-optimized native code (the reference point).
    Native,
    /// CombBLAS — sparse-matrix semirings, 2-D partitioning, MPI.
    CombBlas,
    /// GraphLab — vertex programs, sockets.
    GraphLab,
    /// SociaLite — Datalog over sharded tables (post-§6.1.3 network fix).
    SociaLite,
    /// SociaLite with the pre-fix network stack (Table 7 "Before").
    SociaLiteUnopt,
    /// Giraph — Hadoop BSP vertex programs.
    Giraph,
    /// Galois — task-based, single node only.
    Galois,
}

impl Framework {
    /// The six headline implementations (the unoptimized SociaLite is
    /// only used by the Table 7 experiment).
    pub const ALL: [Framework; 6] = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
        Framework::Galois,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Native => "native",
            Framework::CombBlas => "combblas",
            Framework::GraphLab => "graphlab",
            Framework::SociaLite => "socialite",
            Framework::SociaLiteUnopt => "socialite-unopt",
            Framework::Giraph => "giraph",
            Framework::Galois => "galois",
        }
    }

    /// Whether the framework has a multi-node implementation (Table 2).
    pub fn multi_node(&self) -> bool {
        !matches!(self, Framework::Galois)
    }
}

/// Tunable benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct BenchParams {
    /// PageRank iterations (time is reported per iteration).
    pub pr_iterations: u32,
    /// BFS source vertex; `u32::MAX` (the default) selects the
    /// highest-degree vertex of the workload, guaranteeing a non-trivial
    /// traversal on scrambled RMAT graphs.
    pub bfs_source: u32,
    /// CF hyper-parameters.
    pub cf: CfConfig,
    /// CF iterations (time is reported per iteration).
    pub cf_iterations: u32,
    /// Giraph superstep-splitting factor for TC/CF (§6.1.3).
    pub giraph_splits: u32,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            pr_iterations: 5,
            bfs_source: u32::MAX,
            cf: CfConfig { k: 16, lambda: 0.05, gamma0: 0.005, step_decay: 0.98, seed: 42 },
            cf_iterations: 3,
            giraph_splits: 16,
        }
    }
}

/// The outcome of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Simulated measurements.
    pub report: RunReport,
    /// A result digest for cross-framework sanity checks: sum of ranks
    /// (PageRank), sum of finite distances (BFS), triangle count (TC),
    /// training RMSE (CF).
    pub digest: f64,
}

/// Runs `algorithm` under `framework` on `workload` over `nodes`
/// simulated nodes. Fails with [`SimError::InvalidConfig`] when the
/// combination is impossible (Galois multi-node, missing graph view) and
/// propagates engine failures (e.g. out-of-memory).
pub fn run_benchmark(
    algorithm: Algorithm,
    framework: Framework,
    workload: &Workload,
    nodes: usize,
    params: &BenchParams,
) -> Result<RunOutcome, SimError> {
    match algorithm {
        Algorithm::PageRank => {
            let g = workload
                .directed
                .as_ref()
                .ok_or_else(|| SimError::InvalidConfig("workload has no directed graph".into()))?;
            let it = params.pr_iterations;
            let (ranks, report) = match framework {
                Framework::Native => pagerank::pagerank_cluster(
                    g,
                    PAGERANK_R,
                    it,
                    NativeOptions::all(),
                    nodes,
                )?,
                Framework::CombBlas => combblas::pagerank(g, PAGERANK_R, it, nodes)?,
                Framework::GraphLab => graphlab::pagerank(g, PAGERANK_R, it, nodes)?,
                Framework::SociaLite => socialite::pagerank(g, PAGERANK_R, it, nodes, true)?,
                Framework::SociaLiteUnopt => {
                    socialite::pagerank(g, PAGERANK_R, it, nodes, false)?
                }
                Framework::Giraph => giraph::pagerank(g, PAGERANK_R, it, nodes)?,
                Framework::Galois => galois::pagerank(g, PAGERANK_R, it, nodes)?,
            };
            Ok(RunOutcome { digest: ranks.iter().sum(), report })
        }
        Algorithm::Bfs => {
            let g = workload.undirected.as_ref().ok_or_else(|| {
                SimError::InvalidConfig("workload has no undirected graph".into())
            })?;
            let src = if params.bfs_source == u32::MAX {
                // highest-degree vertex: a seed the paper's Graph500-style
                // runs would accept (non-isolated, large reach)
                (0..g.num_vertices() as u32)
                    .max_by_key(|&v| g.adj.degree(v))
                    .unwrap_or(0)
            } else {
                params.bfs_source
            };
            let (dist, report) = match framework {
                Framework::Native => bfs::bfs_cluster(g, src, NativeOptions::all(), nodes)?,
                Framework::CombBlas => combblas::bfs(g, src, nodes)?,
                Framework::GraphLab => graphlab::bfs(g, src, nodes)?,
                Framework::SociaLite => socialite::bfs(g, src, nodes, true)?,
                Framework::SociaLiteUnopt => socialite::bfs(g, src, nodes, false)?,
                Framework::Giraph => giraph::bfs(g, src, nodes)?,
                Framework::Galois => galois::bfs(g, src, nodes)?,
            };
            let digest: f64 =
                dist.iter().filter(|&&d| d != u32::MAX).map(|&d| f64::from(d)).sum();
            Ok(RunOutcome { digest, report })
        }
        Algorithm::TriangleCount => {
            let g = workload
                .oriented
                .as_ref()
                .ok_or_else(|| SimError::InvalidConfig("workload has no oriented graph".into()))?;
            let (count, report) = match framework {
                Framework::Native => {
                    triangle::triangles_cluster(g, NativeOptions::all(), nodes)?
                }
                Framework::CombBlas => combblas::triangles(g, nodes)?,
                Framework::GraphLab => graphlab::triangles(g, nodes)?,
                Framework::SociaLite => socialite::triangles(g, nodes, true)?,
                Framework::SociaLiteUnopt => socialite::triangles(g, nodes, false)?,
                Framework::Giraph => giraph::triangles_split(g, nodes, params.giraph_splits)?,
                Framework::Galois => galois::triangles(g, nodes)?,
            };
            Ok(RunOutcome { digest: count as f64, report })
        }
        Algorithm::CollaborativeFiltering => {
            let g = workload
                .ratings
                .as_ref()
                .ok_or_else(|| SimError::InvalidConfig("workload has no ratings graph".into()))?;
            let (k, lambda) = (params.cf.k, params.cf.lambda);
            let gamma = params.cf.gamma0;
            let it = params.cf_iterations;
            let (digest, report) = match framework {
                Framework::Native => {
                    let (_, hist, report) =
                        cf::sgd_cluster(g, &params.cf, it, NativeOptions::all(), nodes)?;
                    (*hist.last().unwrap_or(&f64::NAN), report)
                }
                Framework::Galois => {
                    let (_, hist, report) = galois::cf_sgd(g, &params.cf, it, nodes)?;
                    (*hist.last().unwrap_or(&f64::NAN), report)
                }
                Framework::CombBlas => {
                    let (p, q, report) = combblas::cf_gd(g, k, lambda, gamma, it, nodes)?;
                    (cf_rmse_flat(g, &p, &q, k), report)
                }
                Framework::SociaLite => {
                    let (p, q, report) =
                        socialite::cf_gd(g, k, lambda, gamma, it, nodes, true)?;
                    (cf_rmse_flat(g, &p, &q, k), report)
                }
                Framework::SociaLiteUnopt => {
                    let (p, q, report) =
                        socialite::cf_gd(g, k, lambda, gamma, it, nodes, false)?;
                    (cf_rmse_flat(g, &p, &q, k), report)
                }
                Framework::GraphLab => {
                    let (vals, report) = graphlab::cf_gd(g, k, lambda, gamma, it, nodes)?;
                    (cf_rmse_rows(g, &vals, k), report)
                }
                Framework::Giraph => {
                    let (vals, report) =
                        giraph::cf_gd(g, k, lambda, gamma, it, nodes, params.giraph_splits)?;
                    (cf_rmse_rows(g, &vals, k), report)
                }
            };
            Ok(RunOutcome { digest, report })
        }
    }
}

fn cf_rmse_flat(
    g: &graphmaze_graph::RatingsGraph,
    p: &[f64],
    q: &[f64],
    k: usize,
) -> f64 {
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    let mut sse = 0.0;
    for (u, v, r) in g.triples() {
        let e = f64::from(r)
            - dot(&p[u as usize * k..(u as usize + 1) * k], &q[v as usize * k..(v as usize + 1) * k]);
        sse += e * e;
    }
    (sse / g.num_ratings().max(1) as f64).sqrt()
}

fn cf_rmse_rows(g: &graphmaze_graph::RatingsGraph, rows: &[Vec<f64>], k: usize) -> f64 {
    let nu = g.num_users() as usize;
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    let mut sse = 0.0;
    for (u, v, r) in g.triples() {
        let e = f64::from(r) - dot(&rows[u as usize], &rows[nu + v as usize]);
        sse += e * e;
    }
    let _ = k;
    (sse / g.num_ratings().max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_frameworks_run_pagerank_and_agree() {
        let wl = Workload::rmat(9, 8, 71);
        let params = BenchParams::default();
        let native =
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 4, &params).unwrap();
        for fw in [
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::Giraph,
        ] {
            let out = run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params).unwrap();
            let rel = (out.digest - native.digest).abs() / native.digest.abs();
            assert!(rel < 1e-9, "{fw:?} digest {} vs {}", out.digest, native.digest);
            assert!(
                out.report.sim_seconds >= native.report.sim_seconds,
                "{fw:?} cannot beat native"
            );
        }
    }

    #[test]
    fn galois_single_node_only() {
        let wl = Workload::rmat(8, 4, 72);
        let params = BenchParams::default();
        assert!(run_benchmark(Algorithm::Bfs, Framework::Galois, &wl, 1, &params).is_ok());
        assert!(matches!(
            run_benchmark(Algorithm::Bfs, Framework::Galois, &wl, 2, &params),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(!Framework::Galois.multi_node());
    }

    #[test]
    fn triangle_counts_agree_across_frameworks() {
        let wl = Workload::rmat_triangle(9, 8, 73);
        let params = BenchParams::default();
        let counts: Vec<f64> = [
            Framework::Native,
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::Giraph,
        ]
        .iter()
        .map(|&fw| {
            run_benchmark(Algorithm::TriangleCount, fw, &wl, 4, &params).unwrap().digest
        })
        .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "counts {counts:?}");
    }

    #[test]
    fn cf_runs_on_every_framework() {
        let wl = Workload::rmat_ratings(9, 64, 74);
        let params = BenchParams::default();
        for fw in Framework::ALL {
            if !fw.multi_node() {
                continue;
            }
            let out =
                run_benchmark(Algorithm::CollaborativeFiltering, fw, &wl, 4, &params).unwrap();
            assert!(out.digest.is_finite() && out.digest > 0.0, "{fw:?} rmse {}", out.digest);
            assert!(out.report.sim_seconds > 0.0);
        }
    }

    #[test]
    fn ratings_workload_rejects_graph_algorithms() {
        let wl = Workload::rmat_ratings(9, 64, 75);
        let params = BenchParams::default();
        assert!(matches!(
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 1, &params),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn per_iteration_flags_match_paper() {
        assert!(Algorithm::PageRank.per_iteration());
        assert!(Algorithm::CollaborativeFiltering.per_iteration());
        assert!(!Algorithm::Bfs.per_iteration());
        assert!(!Algorithm::TriangleCount.per_iteration());
    }
}
