//! The benchmark runner: `algorithm × framework × workload × nodes →
//! RunReport`, the crossbar behind every figure and table of the paper.
//!
//! Per-framework behaviour lives in the [`crate::engine::Engine`] impls;
//! this module only selects the workload view (and BFS source) per
//! algorithm and dispatches through [`Framework::engine`].

use graphmaze_cluster::SimError;
use graphmaze_metrics::RunReport;
use graphmaze_native::cf::CfConfig;

use crate::workload::Workload;

/// The paper's four algorithms (§2), plus the repo's bit-parallel
/// multi-source BFS extension (ROADMAP item 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Iterative PageRank, reported per iteration.
    PageRank,
    /// Breadth-first search, reported as overall time.
    Bfs,
    /// Triangle counting, reported as overall time.
    TriangleCount,
    /// Collaborative filtering, reported per iteration.
    CollaborativeFiltering,
    /// Bit-parallel multi-source BFS (64 sources per u64 word pass),
    /// reported as overall time. Not part of the paper's Table 5 set —
    /// it extends it with the word-level kernel per-vertex frameworks
    /// struggle to express.
    MsBfs,
}

impl Algorithm {
    /// The paper's four algorithms (Figures 3–5 / Table 5).
    pub const ALL: [Algorithm; 4] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::TriangleCount,
        Algorithm::CollaborativeFiltering,
    ];

    /// The paper's four plus the repo's extensions — the full set the
    /// serving layer and extended Table 5 cover.
    pub const EXTENDED: [Algorithm; 5] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::TriangleCount,
        Algorithm::CollaborativeFiltering,
        Algorithm::MsBfs,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::PageRank => "pagerank",
            Algorithm::Bfs => "bfs",
            Algorithm::TriangleCount => "triangle",
            Algorithm::CollaborativeFiltering => "cf",
            Algorithm::MsBfs => "msbfs",
        }
    }

    /// Whether the paper reports time per iteration (vs overall time).
    pub fn per_iteration(&self) -> bool {
        matches!(
            self,
            Algorithm::PageRank | Algorithm::CollaborativeFiltering
        )
    }
}

/// The six implementations compared in Figures 3–5 (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Framework {
    /// Hand-optimized native code (the reference point).
    Native,
    /// CombBLAS — sparse-matrix semirings, 2-D partitioning, MPI.
    CombBlas,
    /// GraphLab — vertex programs, sockets.
    GraphLab,
    /// SociaLite — Datalog over sharded tables (post-§6.1.3 network fix).
    SociaLite,
    /// SociaLite with the pre-fix network stack (Table 7 "Before").
    SociaLiteUnopt,
    /// Giraph — Hadoop BSP vertex programs.
    Giraph,
    /// Galois — task-based, single node only.
    Galois,
    /// GraphMat — vertex programs auto-lowered onto masked SpMSpV
    /// (closes the ninja gap; the repo's sixth engine, not part of the
    /// paper's headline set).
    GraphMat,
}

impl Framework {
    /// The six headline implementations (the unoptimized SociaLite is
    /// only used by the Table 7 experiment).
    pub const ALL: [Framework; 6] = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
        Framework::Galois,
    ];

    /// The headline six plus the repo's GraphMat extension — the full
    /// set the serving layer, conformance matrix and ninja-gap
    /// experiment cover (mirrors [`Algorithm::EXTENDED`]).
    pub const EXTENDED: [Framework; 7] = [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::SociaLite,
        Framework::Giraph,
        Framework::Galois,
        Framework::GraphMat,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Native => "native",
            Framework::CombBlas => "combblas",
            Framework::GraphLab => "graphlab",
            Framework::SociaLite => "socialite",
            Framework::SociaLiteUnopt => "socialite-unopt",
            Framework::Giraph => "giraph",
            Framework::Galois => "galois",
            Framework::GraphMat => "graphmat",
        }
    }

    /// Whether the framework has a multi-node implementation (Table 2).
    pub fn multi_node(&self) -> bool {
        !matches!(self, Framework::Galois)
    }
}

/// Tunable benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct BenchParams {
    /// PageRank iterations (time is reported per iteration).
    pub pr_iterations: u32,
    /// BFS source vertex; `u32::MAX` (the default) selects the
    /// highest-degree vertex of the workload, guaranteeing a non-trivial
    /// traversal on scrambled RMAT graphs.
    pub bfs_source: u32,
    /// CF hyper-parameters.
    pub cf: CfConfig,
    /// CF iterations (time is reported per iteration).
    pub cf_iterations: u32,
    /// Giraph superstep-splitting factor for TC/CF (§6.1.3).
    pub giraph_splits: u32,
    /// Multi-source BFS batch size (clamped to the vertex count; the
    /// kernel runs one u64 word pass per 64 sources, up to 512).
    pub msbfs_sources: u32,
    /// Seed for the deterministic msbfs source draw ([`msbfs_sources`]).
    pub msbfs_seed: u64,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            pr_iterations: 5,
            bfs_source: u32::MAX,
            cf: CfConfig {
                k: 16,
                lambda: 0.05,
                gamma0: 0.005,
                step_decay: 0.98,
                seed: 42,
            },
            cf_iterations: 3,
            giraph_splits: 16,
            msbfs_sources: 64,
            msbfs_seed: 0x6d73_6266_7331,
        }
    }
}

/// Draws `count` distinct msbfs source vertices from `[0, num_vertices)`
/// with a SplitMix64 stream seeded by `seed` — a pure function of its
/// arguments, so every engine, test, and serving path picks the same
/// batch. Sources are in draw order (not sorted); `count` is clamped to
/// the vertex count and to the kernel's 512-source batch cap.
pub fn msbfs_sources(num_vertices: u32, count: u32, seed: u64) -> Vec<u32> {
    if num_vertices == 0 {
        return Vec::new();
    }
    let take = count
        .min(num_vertices)
        .min(graphmaze_graph::msbfs::MAX_BATCH as u32) as usize;
    let mut sources = Vec::with_capacity(take);
    let mut picked = std::collections::HashSet::with_capacity(take);
    let mut state = seed;
    while sources.len() < take {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let v = (z % u64::from(num_vertices)) as u32;
        if picked.insert(v) {
            sources.push(v);
        }
    }
    sources
}

/// The outcome of one benchmark run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Simulated measurements.
    pub report: RunReport,
    /// A result digest for cross-framework sanity checks: sum of ranks
    /// (PageRank), sum of finite distances (BFS), triangle count (TC),
    /// training RMSE (CF).
    pub digest: f64,
}

/// Runs `algorithm` under `framework` on `workload` over `nodes`
/// simulated nodes. Fails with [`SimError::InvalidConfig`] when the
/// combination is impossible (Galois multi-node, missing graph view) and
/// propagates engine failures (e.g. out-of-memory).
pub fn run_benchmark(
    algorithm: Algorithm,
    framework: Framework,
    workload: &Workload,
    nodes: usize,
    params: &BenchParams,
) -> Result<RunOutcome, SimError> {
    let engine = framework.engine();
    let (digest, report) = match algorithm {
        Algorithm::PageRank => engine.pagerank(workload.directed()?, nodes, params)?,
        Algorithm::Bfs => {
            let g = workload.undirected()?;
            let src = if params.bfs_source == u32::MAX {
                // highest-degree vertex: a seed the paper's Graph500-style
                // runs would accept (non-isolated, large reach)
                (0..g.num_vertices() as u32)
                    .max_by_key(|&v| g.adj.degree(v))
                    .unwrap_or(0)
            } else {
                params.bfs_source
            };
            engine.bfs(g, src, nodes, params)?
        }
        Algorithm::TriangleCount => engine.triangles(workload.oriented()?, nodes, params)?,
        Algorithm::CollaborativeFiltering => engine.cf(workload.ratings()?, nodes, params)?,
        Algorithm::MsBfs => {
            let g = workload.undirected()?;
            let sources = msbfs_sources(
                g.num_vertices() as u32,
                params.msbfs_sources,
                params.msbfs_seed,
            );
            engine.msbfs(g, &sources, nodes, params)?
        }
    };
    Ok(RunOutcome { digest, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_frameworks_run_pagerank_and_agree() {
        let wl = Workload::rmat(9, 8, 71);
        let params = BenchParams::default();
        let native =
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 4, &params).unwrap();
        for fw in [
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::Giraph,
        ] {
            let out = run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params).unwrap();
            let rel = (out.digest - native.digest).abs() / native.digest.abs();
            assert!(
                rel < 1e-9,
                "{fw:?} digest {} vs {}",
                out.digest,
                native.digest
            );
            assert!(
                out.report.sim_seconds >= native.report.sim_seconds,
                "{fw:?} cannot beat native"
            );
        }
    }

    #[test]
    fn galois_single_node_only() {
        let wl = Workload::rmat(8, 4, 72);
        let params = BenchParams::default();
        assert!(run_benchmark(Algorithm::Bfs, Framework::Galois, &wl, 1, &params).is_ok());
        assert!(matches!(
            run_benchmark(Algorithm::Bfs, Framework::Galois, &wl, 2, &params),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(!Framework::Galois.multi_node());
    }

    #[test]
    fn triangle_counts_agree_across_frameworks() {
        let wl = Workload::rmat_triangle(9, 8, 73);
        let params = BenchParams::default();
        let counts: Vec<f64> = [
            Framework::Native,
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::Giraph,
        ]
        .iter()
        .map(|&fw| {
            run_benchmark(Algorithm::TriangleCount, fw, &wl, 4, &params)
                .unwrap()
                .digest
        })
        .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "counts {counts:?}");
    }

    #[test]
    fn cf_runs_on_every_framework() {
        let wl = Workload::rmat_ratings(9, 64, 74);
        let params = BenchParams::default();
        for fw in Framework::ALL {
            if !fw.multi_node() {
                continue;
            }
            let out =
                run_benchmark(Algorithm::CollaborativeFiltering, fw, &wl, 4, &params).unwrap();
            assert!(
                out.digest.is_finite() && out.digest > 0.0,
                "{fw:?} rmse {}",
                out.digest
            );
            assert!(out.report.sim_seconds > 0.0);
        }
    }

    #[test]
    fn ratings_workload_rejects_graph_algorithms() {
        let wl = Workload::rmat_ratings(9, 64, 75);
        let params = BenchParams::default();
        assert!(matches!(
            run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 1, &params),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn per_iteration_flags_match_paper() {
        assert!(Algorithm::PageRank.per_iteration());
        assert!(Algorithm::CollaborativeFiltering.per_iteration());
        assert!(!Algorithm::Bfs.per_iteration());
        assert!(!Algorithm::TriangleCount.per_iteration());
    }
}
