//! The sweep subsystem: declarative, parallel, resumable execution of
//! `algorithm × framework × workload × nodes` crossbars.
//!
//! Every paper artifact (Fig 3–7, Tables 4–7) is a sweep over the same
//! crossbar. A [`Sweep`] describes its cells declaratively
//! ([`SweepCell`]: algorithm, framework, [`WorkloadSpec`], node count,
//! extrapolation factor, parameters); the executor then runs them across
//! a thread pool with per-cell `catch_unwind` isolation, so one engine
//! panic marks that cell [`CellError::Panicked`] instead of aborting the
//! whole `repro all` run.
//!
//! Three properties the experiments rely on:
//!
//! * **Shared workload cache** — workload construction (generation +
//!   CSR + orientation) dominates wall-clock across fig3/fig4/fig5/fig6,
//!   which historically each rebuilt the same graphs. A [`WorkloadCache`]
//!   keyed by canonical [`WorkloadSpec`] builds each workload once per
//!   process and hands out `Arc<Workload>` clones.
//! * **Determinism under parallelism** — results are collected by cell
//!   index, engines are deterministic, and the work scale is a
//!   thread-local override (`graphmaze_cluster::work_scale`), so `--jobs
//!   N` produces byte-identical CSVs to a serial run.
//! * **Resumability** — completed cells (successes *and* deterministic
//!   failures like OOM) append a JSONL record carrying the cell's params
//!   hash, digest and full [`RunReport`] to a journal; a re-run with
//!   `resume` skips journaled cells and reconstructs their results
//!   exactly, so an interrupted `repro all` finishes where it left off.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use graphmaze_cluster::{FaultPlan, SimError};
use graphmaze_datagen::Dataset;
use graphmaze_metrics::{
    RebalanceStats, RecoveryStats, Registry, RetransmitStats, RunReport, StepRecord, Timeline,
    TrafficMatrix, TrafficStats, Work,
};

use crate::flatjson::{esc_json, f64_json, parse_flat_json};
use crate::request::RunRequest;
use crate::runner::{Algorithm, BenchParams, Framework, RunOutcome};
use crate::workload::Workload;

/// Canonical description of how to construct a [`Workload`] — the cache
/// key. Two spec values compare equal iff they build identical workloads.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// Graph500-parameter RMAT graph ([`Workload::rmat`]).
    Rmat {
        scale: u32,
        edge_factor: u32,
        seed: u64,
    },
    /// Triangle-tuned RMAT graph ([`Workload::rmat_triangle`]).
    RmatTriangle {
        scale: u32,
        edge_factor: u32,
        seed: u64,
    },
    /// Synthetic bipartite ratings ([`Workload::rmat_ratings`]).
    RmatRatings {
        scale: u32,
        num_items: u32,
        seed: u64,
    },
    /// A Table 3 dataset stand-in ([`Workload::from_dataset`]).
    Dataset {
        ds: Dataset,
        scale_down: u32,
        seed: u64,
    },
}

impl WorkloadSpec {
    /// Builds the workload this spec describes (use [`WorkloadCache::get`]
    /// to share the result).
    pub fn build(&self) -> Workload {
        match *self {
            WorkloadSpec::Rmat {
                scale,
                edge_factor,
                seed,
            } => Workload::rmat(scale, edge_factor, seed),
            WorkloadSpec::RmatTriangle {
                scale,
                edge_factor,
                seed,
            } => Workload::rmat_triangle(scale, edge_factor, seed),
            WorkloadSpec::RmatRatings {
                scale,
                num_items,
                seed,
            } => Workload::rmat_ratings(scale, num_items, seed),
            WorkloadSpec::Dataset {
                ds,
                scale_down,
                seed,
            } => Workload::from_dataset(ds, scale_down, seed),
        }
    }

    /// Canonical string form, used in the cell hash and the journal.
    pub fn key(&self) -> String {
        match *self {
            WorkloadSpec::Rmat {
                scale,
                edge_factor,
                seed,
            } => {
                format!("rmat/s{scale}/e{edge_factor}/x{seed}")
            }
            WorkloadSpec::RmatTriangle {
                scale,
                edge_factor,
                seed,
            } => {
                format!("rmat-tc/s{scale}/e{edge_factor}/x{seed}")
            }
            WorkloadSpec::RmatRatings {
                scale,
                num_items,
                seed,
            } => {
                format!("cf/s{scale}/i{num_items}/x{seed}")
            }
            WorkloadSpec::Dataset {
                ds,
                scale_down,
                seed,
            } => {
                format!("ds/{ds:?}/d{scale_down}/x{seed}")
            }
        }
    }

    /// Parses the canonical string form back into a spec — the exact
    /// inverse of [`WorkloadSpec::key`], used by the serving wire
    /// protocol so a client names a workload by the same string the
    /// journal records. Returns a descriptive error for anything that
    /// does not round-trip.
    pub fn parse_key(s: &str) -> Result<WorkloadSpec, String> {
        fn field<T: std::str::FromStr>(part: &str, prefix: char) -> Result<T, String> {
            let rest = part
                .strip_prefix(prefix)
                .ok_or_else(|| format!("expected `{prefix}<N>`, got `{part}`"))?;
            rest.parse()
                .map_err(|_| format!("invalid integer `{rest}` in `{part}`"))
        }
        let parts: Vec<&str> = s.split('/').collect();
        match parts.as_slice() {
            [kind @ ("rmat" | "rmat-tc"), sc, ef, seed] => {
                let (scale, edge_factor, seed) =
                    (field(sc, 's')?, field(ef, 'e')?, field(seed, 'x')?);
                Ok(if *kind == "rmat" {
                    WorkloadSpec::Rmat {
                        scale,
                        edge_factor,
                        seed,
                    }
                } else {
                    WorkloadSpec::RmatTriangle {
                        scale,
                        edge_factor,
                        seed,
                    }
                })
            }
            ["cf", sc, items, seed] => Ok(WorkloadSpec::RmatRatings {
                scale: field(sc, 's')?,
                num_items: field(items, 'i')?,
                seed: field(seed, 'x')?,
            }),
            ["ds", ds, down, seed] => Ok(WorkloadSpec::Dataset {
                ds: parse_dataset_debug(ds)?,
                scale_down: field(down, 'd')?,
                seed: field(seed, 'x')?,
            }),
            _ => Err(format!(
                "unrecognized workload spec `{s}` (expected e.g. `rmat/s13/e16/x42`, \
                 `rmat-tc/s13/e16/x42`, `cf/s13/i64/x42` or `ds/LiveJournalLike/d4/x42`)"
            )),
        }
    }
}

/// Parses a [`Dataset`]'s `{:?}` form (the spelling [`WorkloadSpec::key`]
/// embeds), including the parameterized `Graph500 { scale: N }` /
/// `CfSynthetic { scale: N }` variants.
fn parse_dataset_debug(s: &str) -> Result<Dataset, String> {
    match s {
        "FacebookLike" => return Ok(Dataset::FacebookLike),
        "WikipediaLike" => return Ok(Dataset::WikipediaLike),
        "LiveJournalLike" => return Ok(Dataset::LiveJournalLike),
        "TwitterLike" => return Ok(Dataset::TwitterLike),
        "NetflixLike" => return Ok(Dataset::NetflixLike),
        "YahooMusicLike" => return Ok(Dataset::YahooMusicLike),
        _ => {}
    }
    for (name, mk) in [
        (
            "Graph500",
            &(|scale| Dataset::Graph500 { scale }) as &dyn Fn(u32) -> Dataset,
        ),
        ("CfSynthetic", &(|scale| Dataset::CfSynthetic { scale })),
    ] {
        if let Some(rest) = s
            .strip_prefix(name)
            .and_then(|r| r.strip_prefix(" { scale: "))
            .and_then(|r| r.strip_suffix(" }"))
        {
            return rest
                .parse()
                .map(mk)
                .map_err(|_| format!("invalid integer `{rest}` in dataset `{s}`"));
        }
    }
    Err(format!("unknown dataset `{s}`"))
}

/// Process-wide cache of built workloads, keyed by [`WorkloadSpec`].
/// Concurrent requests for the same spec build it exactly once (the
/// losers block on the builder); every other caller gets an `Arc` clone.
#[derive(Default)]
pub struct WorkloadCache {
    map: Mutex<HashMap<WorkloadSpec, Arc<OnceLock<Arc<Workload>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for WorkloadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadCache")
            .field("entries", &self.map.lock().unwrap().len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The workload for `spec`, building it on first request.
    pub fn get(&self, spec: &WorkloadSpec) -> Arc<Workload> {
        let slot = {
            let mut map = self.map.lock().unwrap();
            map.entry(spec.clone()).or_default().clone()
        };
        let mut built = false;
        let wl = slot
            .get_or_init(|| {
                built = true;
                Arc::new(spec.build())
            })
            .clone();
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        wl
    }

    /// Requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to build the workload.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// One cell of a sweep: a single `run_benchmark` invocation plus the
/// metadata the experiment needs to render its row.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Row label in the experiment's table (e.g. the dataset name).
    pub label: String,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Framework under test.
    pub framework: Framework,
    /// Workload to run on (resolved through the cache).
    pub spec: WorkloadSpec,
    /// Simulated node count.
    pub nodes: usize,
    /// Work-scale extrapolation factor (≥ 1; see DESIGN.md §2).
    pub factor: f64,
    /// Benchmark parameters.
    pub params: BenchParams,
    /// Fault-injection plan the cell runs under ([`FaultPlan::none`] for
    /// the fault-free crossbar).
    pub faults: FaultPlan,
}

impl SweepCell {
    /// The cell's 64-bit params hash (FNV-1a over the canonical string of
    /// every field), used as the journal key.
    pub fn key(&self, experiment: &str) -> u64 {
        let p = &self.params;
        let canonical = format!(
            "{experiment}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{:016x}\x1f{}\x1f{}\x1f{}\x1f{:016x}\x1f{:016x}\x1f{:016x}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{:016x}\x1f{}",
            self.label,
            self.algorithm.name(),
            self.framework.name(),
            self.spec.key(),
            self.nodes,
            self.factor.to_bits(),
            p.pr_iterations,
            p.bfs_source,
            p.cf.k,
            p.cf.lambda.to_bits(),
            p.cf.gamma0.to_bits(),
            p.cf.step_decay.to_bits(),
            p.cf.seed,
            p.cf_iterations,
            p.giraph_splits,
            p.msbfs_sources,
            p.msbfs_seed,
            self.faults.key(),
        );
        fnv1a64(&canonical)
    }
}

/// Why a cell failed. Unlike [`SimError`], this includes panics (caught
/// per-cell) and survives the journal round-trip as kind + message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellError {
    /// A node exceeded its memory capacity (the paper's "OOM" cells).
    OutOfMemory(String),
    /// Impossible combination (e.g. Galois multi-node) — rendered "n/a".
    InvalidConfig(String),
    /// The engine panicked; the cell is marked failed instead of taking
    /// down the run.
    Panicked(String),
    /// The fault plan killed a node and the framework fail-stops (no
    /// checkpoint/restart) — the paper's "job lost" cells.
    NodeFailed(String),
    /// The cell exceeded the per-cell wall-clock budget
    /// ([`SweepOptions::cell_timeout`]). Journaled, so a `resume`
    /// quarantines the cell instead of re-running it forever.
    TimedOut(String),
}

impl CellError {
    /// Stable kind tag for the journal.
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::OutOfMemory(_) => "oom",
            CellError::InvalidConfig(_) => "invalid",
            CellError::Panicked(_) => "panic",
            CellError::NodeFailed(_) => "failed",
            CellError::TimedOut(_) => "timeout",
        }
    }

    /// Human-readable message.
    pub fn message(&self) -> &str {
        match self {
            CellError::OutOfMemory(m)
            | CellError::InvalidConfig(m)
            | CellError::Panicked(m)
            | CellError::NodeFailed(m)
            | CellError::TimedOut(m) => m,
        }
    }

    /// The annotation the paper's figures use for this failure mode.
    pub fn annotation(&self) -> &'static str {
        match self {
            CellError::OutOfMemory(_) => "OOM",
            CellError::InvalidConfig(_) => "n/a",
            CellError::Panicked(_) => "fail",
            CellError::NodeFailed(_) => "failed",
            CellError::TimedOut(_) => "timeout",
        }
    }

    fn from_kind(kind: &str, message: String) -> CellError {
        match kind {
            "oom" => CellError::OutOfMemory(message),
            "invalid" => CellError::InvalidConfig(message),
            "failed" => CellError::NodeFailed(message),
            "timeout" => CellError::TimedOut(message),
            _ => CellError::Panicked(message),
        }
    }
}

impl From<SimError> for CellError {
    fn from(e: SimError) -> CellError {
        match e {
            SimError::OutOfMemory(oom) => CellError::OutOfMemory(oom.to_string()),
            SimError::InvalidConfig(m) => CellError::InvalidConfig(m),
            SimError::NodeFailed { .. } => CellError::NodeFailed(e.to_string()),
        }
    }
}

/// How a cell's result was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Executed in this process.
    Ran,
    /// Reconstructed from the journal by `resume` without re-running.
    Resumed,
}

/// The result of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Executed now vs reconstructed from the journal.
    pub status: CellStatus,
    /// The benchmark outcome, or why the cell failed.
    pub outcome: Result<RunOutcome, CellError>,
    /// Real wall-clock spent executing the cell (0 when resumed).
    pub wall_secs: f64,
}

/// A structured progress event from [`Sweep::execute`].
///
/// Events fire from worker threads as the sweep makes progress. Every
/// cell produces exactly one terminal event ([`SweepEvent::Finished`] or
/// [`SweepEvent::Failed`]); cells executed in-process additionally
/// produce a [`SweepEvent::Started`] first, while resumed cells go
/// straight to their terminal event during the upfront journal scan.
#[derive(Debug)]
pub enum SweepEvent<'a> {
    /// A worker picked up `cell` and is about to execute it.
    Started {
        /// Cell index in [`Sweep::cells`] order.
        index: usize,
        /// The cell being executed.
        cell: &'a SweepCell,
        /// Cells without a terminal event yet (including this one).
        remaining: usize,
        /// Wall-clock seconds since the sweep started.
        elapsed_s: f64,
    },
    /// `cell` completed with a successful outcome (ran or resumed).
    Finished {
        /// Cell index in [`Sweep::cells`] order.
        index: usize,
        /// The completed cell.
        cell: &'a SweepCell,
        /// Its result (`outcome` is `Ok`).
        result: &'a CellResult,
        /// Cells still without a terminal event after this one.
        remaining: usize,
        /// Wall-clock seconds since the sweep started.
        elapsed_s: f64,
    },
    /// `cell` completed with an error outcome (ran or resumed).
    Failed {
        /// Cell index in [`Sweep::cells`] order.
        index: usize,
        /// The failed cell.
        cell: &'a SweepCell,
        /// Its result (`outcome` is `Err`).
        result: &'a CellResult,
        /// Cells still without a terminal event after this one.
        remaining: usize,
        /// Wall-clock seconds since the sweep started.
        elapsed_s: f64,
    },
}

/// Observer of sweep progress: receives every [`SweepEvent`] as the
/// executor makes progress (from worker threads, unordered).
///
/// This is the single extension point of [`Sweep::execute`]. Any
/// `Fn(&SweepEvent<'_>) + Sync` closure is an observer, so ad-hoc
/// callers need no impl block; long-lived consumers (progress printers,
/// trace recorders, serving metrics) implement the trait on a struct.
pub trait SweepObserver: Sync {
    /// Called for every event. Invoked from worker threads; must be
    /// cheap or internally buffered — the executor does not decouple
    /// observation from execution.
    fn on_event(&self, event: &SweepEvent<'_>);
}

impl<F: Fn(&SweepEvent<'_>) + Sync> SweepObserver for F {
    fn on_event(&self, event: &SweepEvent<'_>) {
        self(event)
    }
}

/// The do-nothing observer, for callers that only want the
/// [`SweepReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SilentObserver;

impl SweepObserver for SilentObserver {
    fn on_event(&self, _event: &SweepEvent<'_>) {}
}

/// Executor configuration.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Worker threads (values ≤ 1 run serially on the caller's thread
    /// count of one worker).
    pub jobs: usize,
    /// JSONL journal to append completed cells to (`None` disables).
    pub journal: Option<PathBuf>,
    /// Skip cells already present in the journal.
    pub resume: bool,
    /// Per-cell wall-clock budget for the benchmark run (workload
    /// construction is excluded — it is cached and shared). A cell that
    /// exceeds it records [`CellError::TimedOut`] and its runaway engine
    /// thread is detached (the eventual result discarded); because the
    /// outcome is journaled, a `resume` quarantines the cell instead of
    /// re-running it forever. `None` disables the budget.
    pub cell_timeout: Option<std::time::Duration>,
    /// Telemetry registry the workers record into (`None` disables).
    /// Offline sweeps share the serving daemon's instrumentation: each
    /// executed cell increments `graphmaze_sweep_cells_total{outcome}`
    /// and observes `graphmaze_sweep_cell_seconds{algorithm,framework}`
    /// (real wall-clock) plus the jobs-invariant
    /// `graphmaze_sim_seconds{algorithm,framework}` (simulated time, a
    /// pure function of the cell).
    pub telemetry: Option<Arc<Registry>>,
}

/// Aggregate result of a sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Per-cell results, in the same order as [`Sweep::cells`].
    pub results: Vec<CellResult>,
    /// Cells executed in this process.
    pub ran: usize,
    /// Cells reconstructed from the journal.
    pub resumed: usize,
    /// Cells whose outcome is an error (including panics).
    pub failed: usize,
    /// Real wall-clock of the whole sweep, seconds.
    pub wall_secs: f64,
}

/// A declarative crossbar sweep: an experiment name plus its cells.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Experiment name (namespaces cell keys in the journal).
    pub experiment: String,
    /// The cells, in presentation order.
    pub cells: Vec<SweepCell>,
}

impl Sweep {
    /// An empty sweep for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Self {
        Sweep {
            experiment: experiment.into(),
            cells: Vec::new(),
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: SweepCell) {
        self.cells.push(cell);
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell across `opts.jobs` worker threads, journaling and
    /// resuming per `opts`, notifying `observer` with a [`SweepEvent`]
    /// as the sweep makes progress (from worker threads, unordered).
    /// Every cell gets exactly one terminal event; resumed cells skip
    /// [`SweepEvent::Started`]. Results come back in cell order
    /// regardless of scheduling.
    ///
    /// This is the one entry point of the executor — run silently with
    /// [`SilentObserver`], or pass a closure (closures are observers).
    /// Each pending cell executes through [`RunRequest`], the same code
    /// path the serving daemon and the integration tests use, so
    /// digests and identity hashes are bit-identical between online and
    /// offline runs.
    pub fn execute(
        &self,
        opts: &SweepOptions,
        cache: &WorkloadCache,
        observer: &(impl SweepObserver + ?Sized),
    ) -> SweepReport {
        let t0 = Instant::now();
        let journaled = match (&opts.journal, opts.resume) {
            (Some(path), true) => load_journal(path),
            _ => HashMap::new(),
        };

        let done = AtomicUsize::new(0);
        let total = self.cells.len();
        let terminal = |i: usize, cell: &SweepCell, r: &CellResult| {
            let remaining = total - 1 - done.fetch_add(1, Ordering::Relaxed);
            let elapsed_s = t0.elapsed().as_secs_f64();
            let ev = match &r.outcome {
                Ok(_) => SweepEvent::Finished {
                    index: i,
                    cell,
                    result: r,
                    remaining,
                    elapsed_s,
                },
                Err(_) => SweepEvent::Failed {
                    index: i,
                    cell,
                    result: r,
                    remaining,
                    elapsed_s,
                },
            };
            observer.on_event(&ev);
        };

        let mut results: Vec<Option<CellResult>> = vec![None; self.cells.len()];
        let mut pending: Vec<usize> = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            match journaled.get(&cell.key(&self.experiment)) {
                Some(outcome) => {
                    let r = CellResult {
                        status: CellStatus::Resumed,
                        outcome: outcome.clone(),
                        wall_secs: 0.0,
                    };
                    terminal(i, cell, &r);
                    results[i] = Some(r);
                }
                None => pending.push(i),
            }
        }

        let writer = opts.journal.as_ref().and_then(|path| {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(f) => Some(Mutex::new(f)),
                Err(e) => {
                    eprintln!("warning: cannot open journal {}: {e}", path.display());
                    None
                }
            }
        });

        let results = Mutex::new(results);
        if !pending.is_empty() {
            let cursor = AtomicUsize::new(0);
            let workers = opts.jobs.max(1).min(pending.len());
            let (pending, terminal, results, writer, done) =
                (&pending, &terminal, &results, &writer, &done);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let n = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = pending.get(n) else { break };
                        let cell = &self.cells[i];
                        observer.on_event(&SweepEvent::Started {
                            index: i,
                            cell,
                            remaining: total - done.load(Ordering::Relaxed),
                            elapsed_s: t0.elapsed().as_secs_f64(),
                        });
                        let resp = RunRequest::new(self.experiment.clone(), cell.clone())
                            .with_timeout(opts.cell_timeout)
                            .execute(cache);
                        if let Some(registry) = &opts.telemetry {
                            record_cell_telemetry(registry, cell, &resp);
                        }
                        let r = CellResult {
                            status: CellStatus::Ran,
                            outcome: resp.outcome,
                            wall_secs: resp.wall_secs,
                        };
                        if let Some(w) = writer {
                            let line = journal_line(&self.experiment, cell, &r);
                            let mut f = w.lock().unwrap();
                            // line-buffered with an immediate flush so a
                            // killed run loses at most the in-flight cell
                            let _ = f.write_all(line.as_bytes()).and_then(|_| f.flush());
                        }
                        terminal(i, cell, &r);
                        results.lock().unwrap()[i] = Some(r);
                    });
                }
            });
        }

        let results: Vec<CellResult> = results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every cell produced a result"))
            .collect();
        let ran = results
            .iter()
            .filter(|r| r.status == CellStatus::Ran)
            .count();
        let resumed = results.len() - ran;
        let failed = results.iter().filter(|r| r.outcome.is_err()).count();
        SweepReport {
            results,
            ran,
            resumed,
            failed,
            wall_secs: t0.elapsed().as_secs_f64(),
        }
    }
}

/// Records one executed cell into the sweep telemetry registry: an
/// outcome-labelled counter, the real per-cell wall-clock histogram,
/// and the *simulated* seconds histogram. The last one is the
/// determinism anchor: simulated time is a pure function of the cell,
/// so its bucket counts are bit-identical across `--jobs 1` and
/// `--jobs N` even though wall-clock histograms never are.
fn record_cell_telemetry(registry: &Registry, cell: &SweepCell, resp: &crate::RunResponse) {
    let outcome = match &resp.outcome {
        Ok(_) => "ok",
        Err(e) => e.kind(),
    };
    registry
        .counter(
            "graphmaze_sweep_cells_total",
            "cells executed by the sweep workers, by outcome",
            &[("outcome", outcome)],
        )
        .inc();
    let labels = [
        ("algorithm", cell.algorithm.name()),
        ("framework", cell.framework.name()),
    ];
    registry
        .histogram(
            "graphmaze_sweep_cell_seconds",
            "real wall-clock per executed cell",
            &labels,
        )
        .observe_duration(resp.execute);
    if let Ok(out) = &resp.outcome {
        registry
            .histogram(
                "graphmaze_sim_seconds",
                "simulated seconds per successful cell (jobs-invariant)",
                &labels,
            )
            .observe(out.report.sim_seconds);
        let reb = &out.report.rebalance;
        if !reb.is_zero() {
            registry
                .gauge(
                    "graphmaze_cluster_nodes",
                    "physical nodes active at the end of the latest elastic run",
                    &[],
                )
                .set(i64::from(reb.final_nodes));
            registry
                .counter(
                    "graphmaze_rebalance_bytes_total",
                    "partition state migrated by elastic rebalances, bytes",
                    &[],
                )
                .add(reb.migrated_bytes);
        }
    }
}

fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// JSONL journal
//
// One flat JSON object per line, tagged with the schema version `v`
// (currently 6; v2 added the step timeline, v3 the per-destination
// communication matrix and per-node sent bytes, v4 the `resilience`
// timeline column, the `ret_*` lossy-link counters and the `timeout`
// error kind, v5 folded the msbfs params — source count and seed —
// into the cell identity hash, v6 added the `rebalance` timeline
// column, the `reb_*` elasticity counters and `mtx_nodes` — the
// matrix dimension, which exceeds `run_nodes` when joins grew the
// cluster past its logical width). Successful cells carry the
// digest and the *complete* RunReport (fig6 consumes utilization/
// traffic/memory/timeline, not just seconds), with f64s in shortest-
// round-trip form so resumed CSVs are byte-identical. The timeline is
// encoded as one delimited string value (`|` between fields, `;`
// between steps, phases percent-escaped) because the parser only
// handles flat objects. Failed cells carry kind + message so resumed
// runs reproduce the paper's OOM / n/a annotations without re-failing.
// Every line carries the cell's canonical fault spec (`"faults"`, "none"
// for the fault-free crossbar); successful lines additionally carry the
// `rec_*` RecoveryStats fields, plus (v3) `node_sent` — comma-joined
// per-node wire bytes — and `mtx_bytes`/`mtx_msgs` — the row-major
// `mtx_nodes × mtx_nodes` communication matrix as comma-joined u64s
// (`mtx_nodes` falls back to `run_nodes` when absent).
// Lines whose `v` is missing or different are skipped with a warning,
// as are lines predating fault injection (no `"faults"` field) — those
// cells simply re-run. Successful v4 lines additionally carry the
// `ret_*` RetransmitStats fields (ack/retransmit, heartbeat and
// speculation counters — all zero unless the fault plan has link terms).
// ---------------------------------------------------------------------

/// Journal line schema version. Bump when the line format changes
/// incompatibly; `load_journal` skips lines from other versions.
pub const JOURNAL_SCHEMA_VERSION: u32 = 6;

/// Percent-escapes the timeline delimiters (`%`, `|`, `;`) in a phase
/// label so records stay splittable.
fn esc_phase(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            ';' => out.push_str("%3B"),
            c => out.push(c),
        }
    }
    out
}

fn unesc_phase(s: &str) -> String {
    // safe in this order: escaping turns a literal "%7C" into "%257C",
    // which contains no "%7C" substring
    s.replace("%7C", "|")
        .replace("%3B", ";")
        .replace("%25", "%")
}

/// Encodes a [`Timeline`]'s steps as one string value:
/// `step|phase|compute|comm|barrier|recovery|resilience|rebalance|bytes|msgs|max_node_bytes|mem_peak`
/// records joined by `;`. `{:?}` keeps f64s shortest-round-trip
/// ("inf"/"NaN" for non-finite, which `f64::from_str` parses back).
fn timeline_string(tl: &Timeline) -> String {
    tl.steps
        .iter()
        .map(|r| {
            format!(
                "{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}",
                r.step,
                esc_phase(&r.phase),
                r.compute_s,
                r.comm_s,
                r.barrier_s,
                r.recovery_s,
                r.resilience_s,
                r.rebalance_s,
                r.bytes_sent,
                r.messages,
                r.max_node_bytes,
                r.mem_peak_bytes,
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Comma-joins u64s; empty slice encodes as the empty string.
fn u64_list_string(vals: impl Iterator<Item = u64>) -> String {
    vals.map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

fn u64_list_from_string(s: &str) -> Option<Vec<u64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|v| v.parse().ok()).collect()
}

/// Rebuilds a `nodes × nodes` [`TrafficMatrix`] from its comma-joined
/// row-major byte and message lists.
fn matrix_from_strings(nodes: usize, bytes: &str, msgs: &str) -> Option<TrafficMatrix> {
    let bytes = u64_list_from_string(bytes)?;
    let msgs = u64_list_from_string(msgs)?;
    if bytes.len() != nodes * nodes || msgs.len() != nodes * nodes {
        return None;
    }
    let mut m = TrafficMatrix::new(nodes);
    for src in 0..nodes {
        for dst in 0..nodes {
            let i = src * nodes + dst;
            if bytes[i] > 0 || msgs[i] > 0 {
                m.record(src, dst, bytes[i], msgs[i]);
            }
        }
    }
    Some(m)
}

fn timeline_from_string(nodes: usize, s: &str) -> Option<Timeline> {
    let mut tl = Timeline::new(nodes);
    if s.is_empty() {
        return Some(tl);
    }
    for rec in s.split(';') {
        let mut it = rec.split('|');
        let step = it.next()?.parse().ok()?;
        let phase = unesc_phase(it.next()?);
        let compute_s = it.next()?.parse().ok()?;
        let comm_s = it.next()?.parse().ok()?;
        let barrier_s = it.next()?.parse().ok()?;
        let recovery_s = it.next()?.parse().ok()?;
        let resilience_s = it.next()?.parse().ok()?;
        let rebalance_s = it.next()?.parse().ok()?;
        let bytes_sent = it.next()?.parse().ok()?;
        let messages = it.next()?.parse().ok()?;
        let max_node_bytes = it.next()?.parse().ok()?;
        let mem_peak_bytes = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        tl.steps.push(StepRecord {
            step,
            phase,
            compute_s,
            comm_s,
            barrier_s,
            recovery_s,
            resilience_s,
            rebalance_s,
            bytes_sent,
            messages,
            max_node_bytes,
            mem_peak_bytes,
        });
    }
    Some(tl)
}

fn journal_line(experiment: &str, cell: &SweepCell, result: &CellResult) -> String {
    let mut s = format!(
        "{{\"v\":{JOURNAL_SCHEMA_VERSION},\"key\":\"{:016x}\",\"experiment\":\"{}\",\"label\":\"{}\",\"algorithm\":\"{}\",\"framework\":\"{}\",\"spec\":\"{}\",\"nodes\":{},\"factor\":{},\"faults\":\"{}\"",
        cell.key(experiment),
        esc_json(experiment),
        esc_json(&cell.label),
        cell.algorithm.name(),
        cell.framework.name(),
        esc_json(&cell.spec.key()),
        cell.nodes,
        f64_json(cell.factor),
        esc_json(&cell.faults.key()),
    );
    match &result.outcome {
        Ok(out) => {
            let r = &out.report;
            s.push_str(&format!(
                ",\"status\":\"done\",\"digest\":{},\"sim_seconds\":{},\"steps\":{},\"iterations\":{},\"run_nodes\":{},\"cpu_utilization\":{},\"peak_mem_bytes\":{},\"compute_seconds\":{},\"comm_seconds\":{},\"bytes_sent\":{},\"messages\":{},\"bytes_uncompressed\":{},\"peak_bw_bps\":{},\"traffic_steps\":{},\"seq_bytes\":{},\"rand_accesses\":{},\"flops\":{}",
                f64_json(out.digest),
                f64_json(r.sim_seconds),
                r.steps,
                r.iterations,
                r.nodes,
                f64_json(r.cpu_utilization),
                r.peak_mem_bytes,
                f64_json(r.compute_seconds),
                f64_json(r.comm_seconds),
                r.traffic.bytes_sent,
                r.traffic.messages,
                r.traffic.bytes_uncompressed,
                f64_json(r.traffic.peak_bw_bps),
                r.traffic.steps,
                r.total_work.seq_bytes,
                r.total_work.rand_accesses,
                r.total_work.flops,
            ));
            let rec = &r.recovery;
            s.push_str(&format!(
                ",\"rec_checkpoints\":{},\"rec_checkpoint_bytes\":{},\"rec_checkpoint_seconds\":{},\"rec_failures\":{},\"rec_steps_replayed\":{},\"rec_restore_seconds\":{},\"rec_replay_seconds\":{},\"rec_stragglers\":{},\"rec_dropped_sends\":{},\"rec_retransmitted_bytes\":{},\"rec_mem_pressure\":{}",
                rec.checkpoints,
                rec.checkpoint_bytes,
                f64_json(rec.checkpoint_seconds),
                rec.failures,
                rec.steps_replayed,
                f64_json(rec.restore_seconds),
                f64_json(rec.replay_seconds),
                rec.straggler_events,
                rec.dropped_sends,
                rec.retransmitted_bytes,
                rec.mem_pressure_events,
            ));
            let ret = &r.retransmit;
            s.push_str(&format!(
                ",\"ret_retransmits\":{},\"ret_retransmitted_bytes\":{},\"ret_duplicates\":{},\"ret_duplicate_bytes\":{},\"ret_timeout_seconds\":{},\"ret_heartbeats\":{},\"ret_heartbeat_bytes\":{},\"ret_missed_beats\":{},\"ret_suspicions\":{},\"ret_detection_seconds\":{},\"ret_spec_reexecs\":{},\"ret_spec_seconds\":{},\"ret_suppressed\":{}",
                ret.retransmits,
                ret.retransmitted_bytes,
                ret.duplicates,
                ret.duplicate_bytes,
                f64_json(ret.timeout_seconds),
                ret.heartbeats,
                ret.heartbeat_bytes,
                ret.missed_beats,
                ret.suspicions,
                f64_json(ret.detection_seconds),
                ret.speculative_reexecs,
                f64_json(ret.speculative_seconds),
                ret.suppressed_duplicates,
            ));
            let reb = &r.rebalance;
            s.push_str(&format!(
                ",\"reb_joins\":{},\"reb_leaves\":{},\"reb_rebalances\":{},\"reb_migrated_bytes\":{},\"reb_migrated_vertices\":{},\"reb_stall_seconds\":{},\"reb_warmstart_seconds\":{},\"reb_drained\":{},\"reb_colocated_bytes\":{},\"reb_peak_nodes\":{},\"reb_final_nodes\":{}",
                reb.joins,
                reb.leaves,
                reb.rebalances,
                reb.migrated_bytes,
                reb.migrated_vertices,
                f64_json(reb.stall_seconds),
                f64_json(reb.warmstart_seconds),
                reb.drained_messages,
                reb.colocated_bytes,
                reb.peak_nodes,
                reb.final_nodes,
            ));
            s.push_str(&format!(
                ",\"tl_nodes\":{},\"timeline\":\"{}\"",
                r.timeline.nodes,
                esc_json(&timeline_string(&r.timeline)),
            ));
            let mn = r.matrix.nodes;
            let m = &r.matrix;
            s.push_str(&format!(
                ",\"mtx_nodes\":{mn},\"node_sent\":\"{}\",\"mtx_bytes\":\"{}\",\"mtx_msgs\":\"{}\"",
                u64_list_string(r.node_sent_bytes.iter().copied()),
                u64_list_string((0..mn).flat_map(|s| (0..mn).map(move |d| m.bytes(s, d)))),
                u64_list_string((0..mn).flat_map(|s| (0..mn).map(move |d| m.messages(s, d)))),
            ));
        }
        Err(e) => {
            s.push_str(&format!(
                ",\"status\":\"failed\",\"error_kind\":\"{}\",\"error\":\"{}\"",
                e.kind(),
                esc_json(e.message()),
            ));
        }
    }
    s.push_str(&format!(
        ",\"wall_secs\":{}}}\n",
        f64_json(result.wall_secs)
    ));
    s
}

fn entry_outcome(m: &HashMap<String, String>) -> Option<Result<RunOutcome, CellError>> {
    let f = |k: &str| -> Option<f64> { m.get(k)?.parse::<f64>().ok() };
    let u = |k: &str| -> Option<u64> { m.get(k)?.parse::<u64>().ok() };
    match m.get("status")?.as_str() {
        "done" => {
            let report = RunReport {
                sim_seconds: f("sim_seconds")?,
                steps: u("steps")? as u32,
                iterations: u("iterations")? as u32,
                nodes: u("run_nodes")? as usize,
                cpu_utilization: f("cpu_utilization")?,
                peak_mem_bytes: u("peak_mem_bytes")?,
                compute_seconds: f("compute_seconds")?,
                comm_seconds: f("comm_seconds")?,
                traffic: TrafficStats {
                    bytes_sent: u("bytes_sent")?,
                    messages: u("messages")?,
                    bytes_uncompressed: u("bytes_uncompressed")?,
                    peak_bw_bps: f("peak_bw_bps")?,
                    steps: u("traffic_steps")? as u32,
                },
                total_work: Work {
                    seq_bytes: u("seq_bytes")?,
                    rand_accesses: u("rand_accesses")?,
                    flops: u("flops")?,
                },
                timeline: timeline_from_string(u("tl_nodes")? as usize, m.get("timeline")?)?,
                node_sent_bytes: u64_list_from_string(m.get("node_sent")?)?,
                matrix: matrix_from_strings(
                    u("mtx_nodes").or_else(|| u("run_nodes"))? as usize,
                    m.get("mtx_bytes")?,
                    m.get("mtx_msgs")?,
                )?,
                recovery: RecoveryStats {
                    checkpoints: u("rec_checkpoints")? as u32,
                    checkpoint_bytes: u("rec_checkpoint_bytes")?,
                    checkpoint_seconds: f("rec_checkpoint_seconds")?,
                    failures: u("rec_failures")? as u32,
                    steps_replayed: u("rec_steps_replayed")? as u32,
                    restore_seconds: f("rec_restore_seconds")?,
                    replay_seconds: f("rec_replay_seconds")?,
                    straggler_events: u("rec_stragglers")?,
                    dropped_sends: u("rec_dropped_sends")?,
                    retransmitted_bytes: u("rec_retransmitted_bytes")?,
                    mem_pressure_events: u("rec_mem_pressure")?,
                },
                retransmit: RetransmitStats {
                    retransmits: u("ret_retransmits")?,
                    retransmitted_bytes: u("ret_retransmitted_bytes")?,
                    duplicates: u("ret_duplicates")?,
                    duplicate_bytes: u("ret_duplicate_bytes")?,
                    timeout_seconds: f("ret_timeout_seconds")?,
                    heartbeats: u("ret_heartbeats")?,
                    heartbeat_bytes: u("ret_heartbeat_bytes")?,
                    missed_beats: u("ret_missed_beats")?,
                    suspicions: u("ret_suspicions")? as u32,
                    detection_seconds: f("ret_detection_seconds")?,
                    speculative_reexecs: u("ret_spec_reexecs")?,
                    speculative_seconds: f("ret_spec_seconds")?,
                    suppressed_duplicates: u("ret_suppressed")?,
                },
                rebalance: RebalanceStats {
                    joins: u("reb_joins")? as u32,
                    leaves: u("reb_leaves")? as u32,
                    rebalances: u("reb_rebalances")? as u32,
                    migrated_bytes: u("reb_migrated_bytes")?,
                    migrated_vertices: u("reb_migrated_vertices")?,
                    stall_seconds: f("reb_stall_seconds")?,
                    warmstart_seconds: f("reb_warmstart_seconds")?,
                    drained_messages: u("reb_drained")?,
                    colocated_bytes: u("reb_colocated_bytes")?,
                    peak_nodes: u("reb_peak_nodes")? as u32,
                    final_nodes: u("reb_final_nodes")? as u32,
                },
            };
            Some(Ok(RunOutcome {
                digest: f("digest")?,
                report,
            }))
        }
        "failed" => Some(Err(CellError::from_kind(
            m.get("error_kind")?,
            m.get("error")?.clone(),
        ))),
        _ => None,
    }
}

/// Loads a journal into `key → outcome`, silently skipping malformed
/// lines (e.g. the torn last line of a killed run) and, with a counted
/// warning, lines from a different schema version (those cells re-run).
/// A missing file is an empty journal.
pub(crate) fn load_journal(path: &Path) -> HashMap<u64, Result<RunOutcome, CellError>> {
    let mut out = HashMap::new();
    let Ok(body) = std::fs::read_to_string(path) else {
        return out;
    };
    let mut version_skipped = 0usize;
    let mut faults_skipped = 0usize;
    for line in body.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(m) = parse_flat_json(line) else {
            continue;
        };
        if m.get("v").and_then(|v| v.parse::<u32>().ok()) != Some(JOURNAL_SCHEMA_VERSION) {
            version_skipped += 1;
            continue;
        }
        // Lines written before fault injection existed carry no "faults"
        // field; their cell keys were hashed without the fault spec, so
        // they can never match a current key — skip them (counted) rather
        // than let them silently shadow re-runs.
        if !m.contains_key("faults") {
            faults_skipped += 1;
            continue;
        }
        let Some(key) = m.get("key").and_then(|k| u64::from_str_radix(k, 16).ok()) else {
            continue;
        };
        if let Some(outcome) = entry_outcome(&m) {
            out.insert(key, outcome);
        }
    }
    if version_skipped > 0 {
        eprintln!(
            "warning: {}: skipped {version_skipped} journal line(s) not at schema version \
             {JOURNAL_SCHEMA_VERSION}; those cells will re-run",
            path.display()
        );
    }
    if faults_skipped > 0 {
        eprintln!(
            "warning: {}: skipped {faults_skipped} pre-fault-injection journal line(s) \
             (no \"faults\" field); those cells will re-run",
            path.display()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell(fw: Framework, nodes: usize) -> SweepCell {
        SweepCell {
            label: "t".into(),
            algorithm: Algorithm::PageRank,
            framework: fw,
            spec: WorkloadSpec::Rmat {
                scale: 7,
                edge_factor: 4,
                seed: 11,
            },
            nodes,
            factor: 1.0,
            params: BenchParams::default(),
            faults: FaultPlan::none(),
        }
    }

    #[test]
    fn cache_builds_once_and_counts() {
        let cache = WorkloadCache::new();
        let spec = WorkloadSpec::Rmat {
            scale: 6,
            edge_factor: 4,
            seed: 1,
        };
        let a = cache.get(&spec);
        let b = cache.get(&spec);
        assert!(Arc::ptr_eq(&a, &b), "same built workload");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        cache.get(&WorkloadSpec::Rmat {
            scale: 6,
            edge_factor: 4,
            seed: 2,
        });
        assert_eq!(cache.misses(), 2, "different seed is a different workload");
    }

    #[test]
    fn workload_spec_keys_round_trip_through_parse_key() {
        let specs = [
            WorkloadSpec::Rmat {
                scale: 13,
                edge_factor: 16,
                seed: 42,
            },
            WorkloadSpec::RmatTriangle {
                scale: 10,
                edge_factor: 8,
                seed: 7,
            },
            WorkloadSpec::RmatRatings {
                scale: 12,
                num_items: 64,
                seed: 9,
            },
            WorkloadSpec::Dataset {
                ds: Dataset::LiveJournalLike,
                scale_down: 4,
                seed: 42,
            },
            WorkloadSpec::Dataset {
                ds: Dataset::Graph500 { scale: 29 },
                scale_down: 16,
                seed: 1,
            },
            WorkloadSpec::Dataset {
                ds: Dataset::CfSynthetic { scale: 26 },
                scale_down: 12,
                seed: 3,
            },
        ];
        for spec in specs {
            assert_eq!(WorkloadSpec::parse_key(&spec.key()), Ok(spec.clone()));
        }
        for bad in ["", "rmat/s13/e16", "rmat/sx/e16/x42", "ds/NoSuch/d4/x1"] {
            assert!(WorkloadSpec::parse_key(bad).is_err(), "{bad:?}");
        }
        assert!(WorkloadSpec::parse_key("rmat/s2x/e16/x42")
            .unwrap_err()
            .contains("invalid integer `2x`"));
    }

    #[test]
    fn cell_keys_are_stable_and_distinguish_params() {
        let c = small_cell(Framework::Native, 2);
        assert_eq!(c.key("fig3"), c.key("fig3"), "deterministic");
        assert_ne!(c.key("fig3"), c.key("fig4"), "experiment namespaces");
        let mut c2 = c.clone();
        c2.nodes = 4;
        assert_ne!(c.key("fig3"), c2.key("fig3"));
        let mut c3 = c.clone();
        c3.params.pr_iterations += 1;
        assert_ne!(c.key("fig3"), c3.key("fig3"));
        let mut c4 = c.clone();
        c4.factor = 2.0;
        assert_ne!(c.key("fig3"), c4.key("fig3"));
        let mut c5 = c.clone();
        c5.faults = FaultPlan::parse("seed=1,straggler=0.1x4").unwrap();
        assert_ne!(
            c.key("fig3"),
            c5.key("fig3"),
            "fault plan is part of the cell identity"
        );
    }

    #[test]
    fn sweep_telemetry_is_jobs_invariant_on_simulated_time() {
        let mut sweep = Sweep::new("telemetry");
        for fw in [Framework::Native, Framework::GraphLab, Framework::Galois] {
            for nodes in [1, 2] {
                sweep.push(small_cell(fw, nodes));
            }
        }
        let run = |jobs: usize| {
            let registry = Arc::new(Registry::new());
            let opts = SweepOptions {
                jobs,
                telemetry: Some(Arc::clone(&registry)),
                ..SweepOptions::default()
            };
            let report = sweep.execute(&opts, &WorkloadCache::new(), &SilentObserver);
            (registry, report)
        };
        let (serial, report) = run(1);
        let (parallel, _) = run(4);
        // every cell produced exactly one outcome-labelled count
        let samples =
            graphmaze_metrics::parse_exposition(&graphmaze_metrics::render_exposition(&serial))
                .expect("exposition parses");
        let cells: f64 = samples
            .iter()
            .filter(|s| s.name == "graphmaze_sweep_cells_total")
            .map(|s| s.value)
            .sum();
        assert_eq!(cells as usize, sweep.len());
        assert_eq!(
            graphmaze_metrics::expose::sample_value(
                &samples,
                "graphmaze_sweep_cells_total",
                &[("outcome", "invalid")]
            ),
            Some(1.0),
            "Galois×2-nodes fails deterministically"
        );
        assert_eq!(
            graphmaze_metrics::expose::sample_value(
                &samples,
                "graphmaze_sweep_cell_seconds_count",
                &[("algorithm", "pagerank"), ("framework", "native")]
            ),
            Some(2.0)
        );
        // simulated time is a pure function of the cell: the rendered
        // sim-seconds section is byte-identical across --jobs 1 and 4
        let sim_section = |reg: &Registry| {
            graphmaze_metrics::render_exposition(reg)
                .lines()
                .filter(|l| l.starts_with("graphmaze_sim_seconds"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let section = sim_section(&serial);
        assert!(!section.is_empty());
        assert_eq!(section, sim_section(&parallel), "jobs-invariant buckets");
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn node_failed_cells_round_trip_and_annotate() {
        let err = CellError::NodeFailed(
            "node 0 failed during step 3 and the engine cannot recover (fail-stop)".into(),
        );
        assert_eq!(err.kind(), "failed");
        assert_eq!(err.annotation(), "failed");
        assert_eq!(
            CellError::from_kind("failed", err.message().to_string()),
            err
        );
        let cell = small_cell(Framework::GraphLab, 8);
        let r = CellResult {
            status: CellStatus::Ran,
            outcome: Err(err.clone()),
            wall_secs: 0.2,
        };
        let m = parse_flat_json(&journal_line("tabler", &cell, &r)).expect("parses");
        let back = entry_outcome(&m).expect("entry").expect_err("failure");
        assert_eq!(back, err);
    }

    #[test]
    fn journal_lines_without_a_faults_field_are_skipped() {
        let dir = std::env::temp_dir().join(format!("gm-sweep-f-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("prefaults.jsonl");
        let cell = small_cell(Framework::Native, 1);
        let good = CellResult {
            status: CellStatus::Ran,
            outcome: Err(CellError::InvalidConfig("x".into())),
            wall_secs: 0.0,
        };
        let mut body = journal_line("e", &cell, &good);
        // a pre-fault-injection v2 line: same version, no "faults" field
        let old = small_cell(Framework::Giraph, 2);
        body.push_str(&journal_line("e", &old, &good).replacen(",\"faults\":\"none\"", "", 1));
        std::fs::write(&path, body).unwrap();
        let loaded = load_journal(&path);
        assert_eq!(loaded.len(), 1, "only the faults-carrying line survives");
        assert!(loaded.contains_key(&cell.key("e")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_line_round_trips_success_exactly() {
        let cell = small_cell(Framework::Native, 2);
        let outcome = RunOutcome {
            digest: 1234.567890123,
            report: RunReport {
                sim_seconds: 0.1234567890123456,
                steps: 7,
                iterations: 5,
                nodes: 2,
                cpu_utilization: 0.875,
                peak_mem_bytes: 123_456_789,
                compute_seconds: 0.1,
                comm_seconds: 0.023456789,
                traffic: TrafficStats {
                    bytes_sent: 999,
                    messages: 55,
                    bytes_uncompressed: 2000,
                    peak_bw_bps: 1.5e9,
                    steps: 7,
                },
                total_work: Work {
                    seq_bytes: 1,
                    rand_accesses: 2,
                    flops: 3,
                },
                timeline: {
                    let mut tl = Timeline::new(2);
                    tl.steps.push(StepRecord {
                        step: 0,
                        phase: "bfs:top-down".into(),
                        compute_s: 0.0625,
                        comm_s: 0.0078125,
                        barrier_s: 0.001,
                        recovery_s: 0.03125,
                        resilience_s: 0.0009765625,
                        rebalance_s: 0.0078125,
                        bytes_sent: 999,
                        messages: 55,
                        max_node_bytes: 600,
                        mem_peak_bytes: 123_456_789,
                    });
                    tl.steps.push(StepRecord {
                        step: 1,
                        // delimiter-hostile label: all three escapes plus
                        // JSON-relevant characters
                        phase: "a|b;c%d\"e\\f".into(),
                        compute_s: 0.1234567890123456,
                        comm_s: 0.0,
                        barrier_s: 0.001,
                        recovery_s: 0.0,
                        resilience_s: 0.0,
                        rebalance_s: 0.0,
                        bytes_sent: 0,
                        messages: 0,
                        max_node_bytes: 0,
                        mem_peak_bytes: 123_456_789,
                    });
                    tl
                },
                recovery: RecoveryStats {
                    checkpoints: 3,
                    checkpoint_bytes: 1 << 30,
                    checkpoint_seconds: 5.368709119999999,
                    failures: 1,
                    steps_replayed: 4,
                    restore_seconds: 5.36870912,
                    replay_seconds: 0.1234567890123456,
                    straggler_events: 7,
                    dropped_sends: 11,
                    retransmitted_bytes: 4096,
                    mem_pressure_events: 2,
                },
                node_sent_bytes: vec![700, 299],
                matrix: {
                    let mut m = TrafficMatrix::new(2);
                    m.record(0, 1, 700, 30);
                    m.record(1, 0, 299, 25);
                    m
                },
                retransmit: RetransmitStats {
                    retransmits: 9,
                    retransmitted_bytes: 4321,
                    duplicates: 2,
                    duplicate_bytes: 128,
                    timeout_seconds: 0.0009765625,
                    heartbeats: 14,
                    heartbeat_bytes: 224,
                    missed_beats: 3,
                    suspicions: 1,
                    detection_seconds: 3.0000000000000004,
                    speculative_reexecs: 5,
                    speculative_seconds: 0.1234567890123456,
                    suppressed_duplicates: 77,
                },
                rebalance: RebalanceStats {
                    joins: 2,
                    leaves: 1,
                    rebalances: 3,
                    migrated_bytes: 5_000_000,
                    migrated_vertices: 1234,
                    stall_seconds: 0.0087890625,
                    warmstart_seconds: 0.00390625,
                    drained_messages: 42,
                    colocated_bytes: 8192,
                    peak_nodes: 4,
                    final_nodes: 3,
                },
            },
        };
        let r = CellResult {
            status: CellStatus::Ran,
            outcome: Ok(outcome.clone()),
            wall_secs: 0.5,
        };
        let line = journal_line("fig9", &cell, &r);
        let m = parse_flat_json(&line).expect("parses");
        assert_eq!(m["framework"], "native");
        assert_eq!(m["v"], JOURNAL_SCHEMA_VERSION.to_string());
        let back = entry_outcome(&m).expect("entry").expect("success");
        assert_eq!(back.digest, outcome.digest);
        assert_eq!(
            back.report, outcome.report,
            "full report round-trips bit-exactly"
        );
    }

    #[test]
    fn phase_escaping_round_trips() {
        for s in ["", "plain", "%", "%%", "|;%", "a%7Cb", "%25", "x|y;z"] {
            assert_eq!(unesc_phase(&esc_phase(s)), s, "label {s:?}");
        }
    }

    #[test]
    fn journal_lines_from_other_schema_versions_are_skipped() {
        let dir = std::env::temp_dir().join(format!("gm-sweep-v-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("versioned.jsonl");
        let cell = small_cell(Framework::Native, 1);
        let good = CellResult {
            status: CellStatus::Ran,
            outcome: Err(CellError::InvalidConfig("x".into())),
            wall_secs: 0.0,
        };
        let mut body = journal_line("e", &cell, &good);
        // a v1-era line (no `v` field) and a future version: both skipped
        let old = small_cell(Framework::Giraph, 2);
        let v = format!("\"v\":{JOURNAL_SCHEMA_VERSION}");
        body.push_str(&journal_line("e", &old, &good).replacen(&format!("{{{v},"), "{", 1));
        body.push_str(&journal_line("e", &old, &good).replacen(&v, "\"v\":99", 1));
        std::fs::write(&path, body).unwrap();
        let loaded = load_journal(&path);
        assert_eq!(loaded.len(), 1, "only the current-version line survives");
        assert!(loaded.contains_key(&cell.key("e")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_line_round_trips_failure() {
        let cell = small_cell(Framework::Giraph, 4);
        let err = CellError::OutOfMemory("node 3: wanted 5 GB \"extra\"".into());
        let r = CellResult {
            status: CellStatus::Ran,
            outcome: Err(err.clone()),
            wall_secs: 0.1,
        };
        let line = journal_line("fig9", &cell, &r);
        let m = parse_flat_json(&line).expect("parses");
        let back = entry_outcome(&m).expect("entry").expect_err("failure");
        assert_eq!(back, err);
    }

    #[test]
    fn non_finite_floats_survive_the_journal() {
        let mut outcome = RunOutcome {
            digest: f64::NAN,
            report: RunReport::default(),
        };
        outcome.report.sim_seconds = f64::INFINITY;
        let cell = small_cell(Framework::Native, 1);
        let r = CellResult {
            status: CellStatus::Ran,
            outcome: Ok(outcome),
            wall_secs: 0.0,
        };
        let m = parse_flat_json(&journal_line("x", &cell, &r)).expect("parses");
        let back = entry_outcome(&m).expect("entry").expect("success");
        assert!(back.digest.is_nan());
        assert_eq!(back.report.sim_seconds, f64::INFINITY);
    }

    #[test]
    fn malformed_journal_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("gm-sweep-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("torn.jsonl");
        let cell = small_cell(Framework::Native, 1);
        let good = CellResult {
            status: CellStatus::Ran,
            outcome: Err(CellError::InvalidConfig("x".into())),
            wall_secs: 0.0,
        };
        let mut body = journal_line("e", &cell, &good);
        body.push_str("{\"key\":\"00ff\",\"status\":\"done\",\"digest\":1"); // torn line
        std::fs::write(&path, body).unwrap();
        let loaded = load_journal(&path);
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains_key(&cell.key("e")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn timed_out_cells_round_trip_through_the_journal() {
        let err = CellError::TimedOut("cell exceeded its 30.000 s wall-clock budget".into());
        assert_eq!(err.kind(), "timeout");
        assert_eq!(err.annotation(), "timeout");
        let cell = small_cell(Framework::Giraph, 8);
        let r = CellResult {
            status: CellStatus::Ran,
            outcome: Err(err.clone()),
            wall_secs: 30.0,
        };
        let m = parse_flat_json(&journal_line("resilience", &cell, &r)).expect("parses");
        let back = entry_outcome(&m).expect("entry").expect_err("failure");
        assert_eq!(back, err);
    }

    #[test]
    fn cell_timeout_records_timed_out_and_resume_quarantines() {
        let dir = std::env::temp_dir().join(format!("gm-sweep-t-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("timeout.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut sweep = Sweep::new("tmo");
        sweep.push(small_cell(Framework::Native, 2));
        let cache = WorkloadCache::new();
        // a zero budget times out before any benchmark can finish
        let opts = SweepOptions {
            jobs: 1,
            journal: Some(path.clone()),
            resume: false,
            cell_timeout: Some(std::time::Duration::ZERO),
            telemetry: None,
        };
        let rep = sweep.execute(&opts, &cache, &SilentObserver);
        assert_eq!(rep.ran, 1);
        assert!(
            matches!(rep.results[0].outcome, Err(CellError::TimedOut(_))),
            "{:?}",
            rep.results[0].outcome
        );
        // resume must quarantine the journaled timeout, not retry it —
        // even with the budget lifted
        let opts2 = SweepOptions {
            jobs: 1,
            journal: Some(path.clone()),
            resume: true,
            cell_timeout: None,
            telemetry: None,
        };
        let rep2 = sweep.execute(&opts2, &cache, &SilentObserver);
        assert_eq!((rep2.ran, rep2.resumed), (0, 1));
        assert_eq!(rep2.results[0].status, CellStatus::Resumed);
        assert!(matches!(
            rep2.results[0].outcome,
            Err(CellError::TimedOut(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
