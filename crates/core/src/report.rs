//! Report formatting: plain-text tables and CSV emission for the `repro`
//! harness, plus the geometric-mean summaries of Tables 5/6.

pub use graphmaze_metrics::report::geomean;

/// Renders an aligned plain-text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (minimal quoting: fields containing commas or
/// quotes are double-quoted).
pub fn format_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let esc = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Formats seconds with sensible precision for log-scale comparisons.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.3}", s)
    } else {
        format!("{s:.2e}")
    }
}

/// Formats a slowdown factor like the paper's tables (one decimal).
pub fn fmt_slowdown(x: f64) -> String {
    if !x.is_finite() {
        "oom/fail".to_string()
    } else if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

/// Formats byte counts human-readably.
pub fn fmt_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        format_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_escapes() {
        let c = format_csv(&["a", "b"], &[vec!["x,y".into(), "q\"z".into()]]);
        assert_eq!(c, "a,b\n\"x,y\",\"q\"\"z\"\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.01234), "0.012");
        assert_eq!(fmt_slowdown(2.53), "2.5");
        assert_eq!(fmt_slowdown(f64::INFINITY), "oom/fail");
        assert_eq!(fmt_bytes(1536.0), "1.5 KB");
        assert_eq!(fmt_bytes(10.0), "10.0 B");
    }

    #[test]
    fn geomean_reexported() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }
}
