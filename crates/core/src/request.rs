//! The programmatic run API: [`RunRequest`] → [`RunResponse`].
//!
//! Every way of running a benchmark cell — the `repro` CLI (via the
//! sweep executor), the serving daemon, and the integration tests —
//! constructs a [`RunRequest`] and calls [`RunRequest::execute`] (or
//! [`RunRequest::execute_cached`]). There is exactly one code path from
//! "described run" to "engine dispatch", so the digest and the 64-bit
//! identity hash ([`RunRequest::key`]) of a run are bit-identical
//! whether it was produced offline by `repro`, online by the daemon, or
//! inline by a test.
//!
//! A request is a [`SweepCell`] (algorithm, framework, workload spec,
//! node count, extrapolation factor, params, fault plan) plus the
//! experiment namespace and an optional wall-clock budget; the response
//! carries the outcome, the identity hash it is filed under, the
//! provenance (computed now vs served from cache) and the real
//! wall-clock spent.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use graphmaze_cluster::{with_faults, with_work_scale};

use crate::cache::ResultCache;
use crate::runner::{run_benchmark, RunOutcome};
use crate::sweep::{CellError, SweepCell, WorkloadCache};
use crate::workload::Workload;

/// How a [`RunResponse`]'s outcome was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Executed by this call.
    Computed,
    /// Served from a [`ResultCache`] hit without re-running.
    Cached,
}

impl Provenance {
    /// Stable wire tag (`"miss"` for computed, `"hit"` for cached).
    pub fn wire_tag(&self) -> &'static str {
        match self {
            Provenance::Computed => "miss",
            Provenance::Cached => "hit",
        }
    }
}

/// A fully-described benchmark run: one sweep cell under an experiment
/// namespace, with an optional per-run wall-clock budget.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// Experiment namespace (part of the identity hash, so the same
    /// cell under different experiments journals separately).
    pub experiment: String,
    /// The cell to run.
    pub cell: SweepCell,
    /// Wall-clock budget for the benchmark run (`None` disables). The
    /// workload build is excluded — it is cached and shared.
    pub timeout: Option<Duration>,
}

/// The answer to a [`RunRequest`].
#[derive(Clone, Debug)]
pub struct RunResponse {
    /// The identity hash the outcome is filed under (journal and result
    /// cache key).
    pub key: u64,
    /// The benchmark outcome, or why the cell failed.
    pub outcome: Result<RunOutcome, CellError>,
    /// Computed now vs served from cache.
    pub provenance: Provenance,
    /// Real wall-clock spent answering, seconds (cache hits still pay
    /// the lookup, so this is never exactly zero for them — just small).
    pub wall_secs: f64,
    /// Wall-clock spent resolving the result cache (zero for the
    /// uncached [`RunRequest::execute`] path, which never looks).
    pub cache_lookup: Duration,
    /// Wall-clock spent actually running the cell, admission included.
    /// Exactly [`Duration::ZERO`] for cache hits — nothing ran — which
    /// is what lets span accounting assert `execute == 0` on hits.
    pub execute: Duration,
}

impl RunRequest {
    /// A request for `cell` under `experiment`, with no budget.
    pub fn new(experiment: impl Into<String>, cell: SweepCell) -> Self {
        RunRequest {
            experiment: experiment.into(),
            cell,
            timeout: None,
        }
    }

    /// The same request with a wall-clock budget.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// The run's 64-bit identity hash — [`SweepCell::key`] under this
    /// request's experiment namespace. Cache and journal key.
    pub fn key(&self) -> u64 {
        self.cell.key(&self.experiment)
    }

    /// Executes the request unconditionally (no result cache; the
    /// workload itself still resolves through `workloads`).
    pub fn execute(&self, workloads: &WorkloadCache) -> RunResponse {
        let t = Instant::now();
        let outcome = execute_cell(&self.cell, workloads, self.timeout);
        let execute = t.elapsed();
        RunResponse {
            key: self.key(),
            outcome,
            provenance: Provenance::Computed,
            wall_secs: execute.as_secs_f64(),
            cache_lookup: Duration::ZERO,
            execute,
        }
    }

    /// Answers the request from `results` when possible, executing and
    /// admitting the outcome otherwise. Admission follows
    /// [`ResultCache::admissible`] — deterministic outcomes only.
    pub fn execute_cached(&self, workloads: &WorkloadCache, results: &ResultCache) -> RunResponse {
        let t = Instant::now();
        let key = self.key();
        let looked_up = results.get(key);
        let cache_lookup = t.elapsed();
        if let Some(outcome) = looked_up {
            return RunResponse {
                key,
                outcome,
                provenance: Provenance::Cached,
                wall_secs: t.elapsed().as_secs_f64(),
                cache_lookup,
                execute: Duration::ZERO,
            };
        }
        let run_start = Instant::now();
        let outcome = execute_cell(&self.cell, workloads, self.timeout);
        results.admit(key, &outcome);
        RunResponse {
            key,
            outcome,
            provenance: Provenance::Computed,
            wall_secs: t.elapsed().as_secs_f64(),
            cache_lookup,
            // admission is charged to the run, not the lookup: it only
            // happens when something actually ran
            execute: run_start.elapsed(),
        }
    }
}

/// Runs one cell with panic isolation and, when `timeout` is set, a
/// wall-clock budget on the benchmark run. The workload is resolved
/// through the cache on the calling thread first so the budget never
/// charges (shared, one-off) construction time to an unlucky cell.
pub(crate) fn execute_cell(
    cell: &SweepCell,
    cache: &WorkloadCache,
    timeout: Option<Duration>,
) -> Result<RunOutcome, CellError> {
    let wl = match catch_unwind(AssertUnwindSafe(|| cache.get(&cell.spec))) {
        Ok(wl) => wl,
        Err(payload) => return Err(CellError::Panicked(panic_message(&payload))),
    };
    match timeout {
        None => run_cell(cell, &wl),
        // a zero budget forfeits every cell up front; skipping the spawn
        // keeps the outcome deterministic instead of racing a fast cell
        // against an already-expired deadline
        Some(limit) if limit.is_zero() => Err(CellError::TimedOut(
            "cell exceeded its 0.000 s wall-clock budget".to_string(),
        )),
        Some(limit) => {
            // the benchmark runs on a detached thread so a runaway cell
            // can be abandoned: Rust threads cannot be killed, but the
            // receiver gives up at the deadline and the orphan's eventual
            // send goes nowhere
            let (tx, rx) = std::sync::mpsc::channel();
            let cell = cell.clone();
            std::thread::spawn(move || {
                let _ = tx.send(run_cell(&cell, &wl));
            });
            match rx.recv_timeout(limit) {
                Ok(outcome) => outcome,
                Err(_) => Err(CellError::TimedOut(format!(
                    "cell exceeded its {:.3} s wall-clock budget",
                    limit.as_secs_f64()
                ))),
            }
        }
    }
}

/// The benchmark body of one cell: panic isolation plus the cell's work
/// scale and fault plan (both thread-local, so concurrent requests never
/// leak either into each other's cells).
fn run_cell(cell: &SweepCell, wl: &Workload) -> Result<RunOutcome, CellError> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        with_faults(cell.faults, || {
            with_work_scale(cell.factor, || {
                run_benchmark(cell.algorithm, cell.framework, wl, cell.nodes, &cell.params)
            })
        })
    }));
    match caught {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(sim_err)) => Err(sim_err.into()),
        Err(payload) => Err(CellError::Panicked(panic_message(&payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Algorithm, BenchParams, Framework};
    use crate::sweep::WorkloadSpec;
    use graphmaze_cluster::FaultPlan;

    fn request() -> RunRequest {
        RunRequest::new(
            "req",
            SweepCell {
                label: "t".into(),
                algorithm: Algorithm::PageRank,
                framework: Framework::Native,
                spec: WorkloadSpec::Rmat {
                    scale: 7,
                    edge_factor: 4,
                    seed: 11,
                },
                nodes: 2,
                factor: 1.0,
                params: BenchParams::default(),
                faults: FaultPlan::none(),
            },
        )
    }

    #[test]
    fn execute_and_cached_paths_agree_bit_exactly() {
        let workloads = WorkloadCache::new();
        let results = ResultCache::new(8);
        let direct = request().execute(&workloads);
        let miss = request().execute_cached(&workloads, &results);
        let hit = request().execute_cached(&workloads, &results);
        assert_eq!(direct.provenance, Provenance::Computed);
        assert_eq!(miss.provenance, Provenance::Computed);
        assert_eq!(hit.provenance, Provenance::Cached);
        assert_eq!(direct.key, hit.key);
        let d = direct.outcome.unwrap();
        let m = miss.outcome.unwrap();
        let h = hit.outcome.unwrap();
        assert_eq!(d.digest, m.digest);
        assert_eq!(d, h, "the cached outcome is the computed one, bit-exact");
    }

    #[test]
    fn key_matches_the_sweep_cell_key() {
        let req = request();
        assert_eq!(req.key(), req.cell.key("req"));
        assert_ne!(req.key(), req.cell.key("other-experiment"));
    }

    #[test]
    fn zero_timeout_times_out_and_is_not_cached() {
        let workloads = WorkloadCache::new();
        let results = ResultCache::new(8);
        let resp = request()
            .with_timeout(Some(Duration::ZERO))
            .execute_cached(&workloads, &results);
        assert!(matches!(resp.outcome, Err(CellError::TimedOut(_))));
        // the timeout was refused admission: the next call computes
        let retry = request().execute_cached(&workloads, &results);
        assert_eq!(retry.provenance, Provenance::Computed);
        assert!(retry.outcome.is_ok());
    }

    #[test]
    fn stage_durations_distinguish_hits_from_misses() {
        let workloads = WorkloadCache::new();
        let results = ResultCache::new(8);
        let miss = request().execute_cached(&workloads, &results);
        let hit = request().execute_cached(&workloads, &results);
        assert!(miss.execute > Duration::ZERO, "a miss actually ran");
        assert_eq!(hit.execute, Duration::ZERO, "nothing ran on a hit");
        let direct = request().execute(&workloads);
        assert_eq!(direct.cache_lookup, Duration::ZERO, "no cache, no lookup");
        assert!(direct.execute > Duration::ZERO);
    }

    #[test]
    fn wire_tags_are_stable() {
        assert_eq!(Provenance::Computed.wire_tag(), "miss");
        assert_eq!(Provenance::Cached.wire_tag(), "hit");
    }
}
