//! The result cache: the sweep journal promoted to a bounded in-memory
//! cache with LRU eviction and hit/miss/admission accounting.
//!
//! The JSONL journal (see [`crate::sweep`]) is already a
//! content-addressed result store — every line is keyed by the cell's
//! 64-bit identity hash ([`crate::SweepCell::key`]), and `--resume`
//! proves a journaled outcome substitutes bit-exactly for a re-run.
//! [`ResultCache`] takes that contract online: the serving daemon
//! answers repeated queries from memory instead of re-simulating, under
//! a bounded footprint. Because the key covers *every* input (workload
//! spec, node count, params, fault plan, experiment namespace), a hit
//! can never alias a different run — the same guarantee `--resume`
//! relies on, now load-bearing for serving correctness.
//!
//! Deterministic failures (OOM, invalid configs, fail-stop node kills)
//! are cached exactly like successes — they are just as much a function
//! of the request, and the paper's "OOM"/"n/a" cells are answers, not
//! transients. The two *non*-deterministic outcomes — panics and
//! wall-clock timeouts — are refused admission so a lucky retry is
//! never shadowed by an unlucky first attempt.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::runner::RunOutcome;
use crate::sweep::{load_journal, CellError};

/// A cached outcome: exactly what the journal stores per cell.
pub type CachedOutcome = Result<RunOutcome, CellError>;

/// Point-in-time counters for a [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Outcomes stored (including journal warm-loads).
    pub admissions: u64,
    /// Outcomes refused admission (non-deterministic: panic/timeout).
    pub rejections: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    outcome: CachedOutcome,
    /// Logical clock of the last touch; the smallest value is the LRU
    /// victim.
    last_used: u64,
}

/// Bounded LRU cache of run outcomes keyed by the cell identity hash.
///
/// All methods take `&self`; the cache is shared across daemon
/// connection handlers behind an `Arc`.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    admissions: AtomicU64,
    rejections: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Default)]
struct Lru {
    map: HashMap<u64, Entry>,
    tick: u64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResultCache {
    /// An empty cache holding at most `capacity` outcomes. A capacity of
    /// zero disables storage entirely (every lookup misses, every
    /// admission is rejected) — useful for measuring the uncached
    /// baseline with the same daemon.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(Lru::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The outcome cached under `key`, bumping its recency. Counts a hit
    /// or a miss.
    pub fn get(&self, key: u64) -> Option<CachedOutcome> {
        let mut lru = self.inner.lock().unwrap();
        lru.tick += 1;
        let tick = lru.tick;
        match lru.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.outcome.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether `outcome` is deterministic enough to cache. Panics and
    /// timeouts depend on the host (a stack-smashed run or a slow
    /// machine), so serving them from cache would pin one bad attempt
    /// forever.
    pub fn admissible(outcome: &CachedOutcome) -> bool {
        !matches!(
            outcome,
            Err(CellError::Panicked(_)) | Err(CellError::TimedOut(_))
        )
    }

    /// Stores `outcome` under `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns whether the outcome was
    /// admitted (non-deterministic outcomes and zero-capacity caches
    /// reject; re-admitting an existing key refreshes it in place).
    pub fn admit(&self, key: u64, outcome: &CachedOutcome) -> bool {
        if self.capacity == 0 || !Self::admissible(outcome) {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut lru = self.inner.lock().unwrap();
        lru.tick += 1;
        let tick = lru.tick;
        if let Some(entry) = lru.map.get_mut(&key) {
            entry.outcome = outcome.clone();
            entry.last_used = tick;
            self.admissions.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if lru.map.len() >= self.capacity {
            // O(n) victim scan: capacities are small (thousands) and
            // admissions are rare next to simulated-run costs
            if let Some(&victim) = lru
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                lru.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        lru.map.insert(
            key,
            Entry {
                outcome: outcome.clone(),
                last_used: tick,
            },
        );
        self.admissions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Pre-populates the cache from a sweep journal, newest lines last
    /// (so on overflow the journal's most recent outcomes survive).
    /// Returns how many entries were admitted. Malformed or
    /// wrong-version lines are skipped exactly as `--resume` skips them.
    pub fn warm_from_journal(&self, path: &Path) -> usize {
        let mut admitted = 0usize;
        for (key, outcome) in load_journal(path) {
            if self.admit(key, &outcome) {
                admitted += 1;
            }
        }
        admitted
    }

    /// Mirrors the cache counters into `registry` as
    /// `graphmaze_cache_*` metrics. The cache keeps its own atomics —
    /// one `ResultCache` can be scraped by many registries without any
    /// shared mutable state — so this is collect-on-scrape: call it
    /// right before rendering the exposition.
    pub fn export_into(&self, registry: &graphmaze_metrics::Registry) {
        let s = self.stats();
        for (name, help, value) in [
            (
                "graphmaze_cache_hits_total",
                "result-cache lookup hits",
                s.hits,
            ),
            (
                "graphmaze_cache_misses_total",
                "result-cache lookup misses",
                s.misses,
            ),
            (
                "graphmaze_cache_admissions_total",
                "outcomes admitted to the result cache",
                s.admissions,
            ),
            (
                "graphmaze_cache_rejections_total",
                "outcomes refused admission (non-deterministic)",
                s.rejections,
            ),
            (
                "graphmaze_cache_evictions_total",
                "entries displaced by LRU eviction",
                s.evictions,
            ),
        ] {
            registry.counter(name, help, &[]).store(value);
        }
        registry
            .gauge(
                "graphmaze_cache_resident_entries",
                "entries currently resident",
                &[],
            )
            .set(s.len as i64);
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.inner.lock().unwrap().map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(digest: f64) -> CachedOutcome {
        Ok(RunOutcome {
            digest,
            report: Default::default(),
        })
    }

    #[test]
    fn hit_miss_and_admission_accounting() {
        let cache = ResultCache::new(4);
        assert!(cache.get(1).is_none());
        assert!(cache.admit(1, &ok(1.0)));
        assert_eq!(cache.get(1).unwrap().unwrap().digest, 1.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.admissions, s.len), (1, 1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn evicts_least_recently_used_in_order() {
        let cache = ResultCache::new(3);
        for k in 1..=3u64 {
            cache.admit(k, &ok(k as f64));
        }
        // touch 1 so 2 becomes the LRU victim
        assert!(cache.get(1).is_some());
        cache.admit(4, &ok(4.0));
        assert!(cache.get(2).is_none(), "2 was evicted");
        assert!(cache.get(1).is_some() && cache.get(3).is_some() && cache.get(4).is_some());
        // now the recency order is 1, 3, 4 → admitting two more evicts 1 then 3
        cache.admit(5, &ok(5.0));
        assert!(cache.get(1).is_none(), "1 was evicted second");
        cache.admit(6, &ok(6.0));
        assert!(cache.get(3).is_none(), "3 was evicted third");
        assert_eq!(cache.stats().evictions, 3);
        assert_eq!(cache.stats().len, 3);
    }

    #[test]
    fn deterministic_failures_are_cached_but_panics_and_timeouts_are_not() {
        let cache = ResultCache::new(8);
        let oom: CachedOutcome = Err(CellError::OutOfMemory("node 1: 5 GB".into()));
        assert!(cache.admit(1, &oom));
        assert_eq!(cache.get(1).unwrap().unwrap_err().kind(), "oom");
        for (k, bad) in [
            (2u64, Err(CellError::Panicked("boom".into()))),
            (3u64, Err(CellError::TimedOut("budget".into()))),
        ] {
            assert!(!cache.admit(k, &bad));
            assert!(cache.get(k).is_none());
        }
        assert_eq!(cache.stats().rejections, 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        assert!(!cache.admit(1, &ok(1.0)));
        assert!(cache.get(1).is_none());
        let s = cache.stats();
        assert_eq!((s.admissions, s.rejections, s.len), (0, 1, 0));
    }

    #[test]
    fn export_mirrors_stats_into_a_registry() {
        let cache = ResultCache::new(2);
        cache.admit(1, &ok(1.0));
        assert!(cache.get(1).is_some());
        assert!(cache.get(9).is_none());
        let registry = graphmaze_metrics::Registry::new();
        cache.export_into(&registry);
        let text = graphmaze_metrics::render_exposition(&registry);
        let samples = graphmaze_metrics::parse_exposition(&text).expect("parses");
        let value = |name: &str| graphmaze_metrics::expose::sample_value(&samples, name, &[]);
        assert_eq!(value("graphmaze_cache_hits_total"), Some(1.0));
        assert_eq!(value("graphmaze_cache_misses_total"), Some(1.0));
        assert_eq!(value("graphmaze_cache_admissions_total"), Some(1.0));
        assert_eq!(value("graphmaze_cache_resident_entries"), Some(1.0));
        // a later scrape re-mirrors the counters instead of double-counting
        assert!(cache.get(1).is_some());
        cache.export_into(&registry);
        let samples =
            graphmaze_metrics::parse_exposition(&graphmaze_metrics::render_exposition(&registry))
                .expect("parses");
        assert_eq!(
            graphmaze_metrics::expose::sample_value(&samples, "graphmaze_cache_hits_total", &[]),
            Some(2.0)
        );
    }

    #[test]
    fn readmission_refreshes_in_place() {
        let cache = ResultCache::new(2);
        cache.admit(1, &ok(1.0));
        cache.admit(2, &ok(2.0));
        assert!(cache.admit(1, &ok(1.5)), "same key re-admits");
        assert_eq!(cache.stats().len, 2, "no duplicate entry");
        assert_eq!(cache.get(1).unwrap().unwrap().digest, 1.5);
        // 2 is now LRU; a third key evicts it, not 1
        cache.admit(3, &ok(3.0));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
    }
}
