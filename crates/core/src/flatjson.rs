//! Minimal flat-JSON encode/decode shared by the sweep journal and the
//! serving wire protocol.
//!
//! Both formats are **one flat JSON object per line** — string values,
//! bare numbers and booleans, no nesting. Keeping the codec this small
//! (and dependency-free) is deliberate: the journal parser must tolerate
//! a torn final line from a killed run, and the serving daemon must
//! never trust a client enough to need a full JSON tree. Anything
//! structured (timelines, matrices) is encoded as one delimited string
//! value by its owner.

use std::collections::HashMap;

/// Escapes a string for use inside a JSON string literal.
pub fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `{:?}` on finite f64 is shortest-round-trip; non-finite values are
/// quoted so every line stays valid JSON.
pub fn f64_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        format!("\"{v:?}\"")
    }
}

/// Parses one flat JSON object into raw key → value strings (string
/// values unescaped, numbers/barewords verbatim). Returns `None` on any
/// malformed input — a torn journal line from a killed run, or a
/// garbage request line from a misbehaving client, is skipped, not
/// fatal.
pub fn parse_flat_json(line: &str) -> Option<HashMap<String, String>> {
    let b = line.trim().as_bytes();
    let mut i = 0usize;
    let skip_ws = |b: &[u8], i: &mut usize| {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |b: &[u8], i: &mut usize| -> Option<String> {
        if b.get(*i) != Some(&b'"') {
            return None;
        }
        *i += 1;
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Some(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(b.get(*i + 1..*i + 5)?).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            *i += 4;
                        }
                        _ => return None,
                    }
                    *i += 1;
                }
                c if c < 0x80 => {
                    out.push(c as char);
                    *i += 1;
                }
                _ => {
                    // multi-byte UTF-8: copy the full scalar
                    let s = std::str::from_utf8(&b[*i..]).ok()?;
                    let ch = s.chars().next()?;
                    out.push(ch);
                    *i += ch.len_utf8();
                }
            }
        }
        None
    };
    let parse_bare = |b: &[u8], i: &mut usize| -> String {
        let start = *i;
        while *i < b.len() && !matches!(b[*i], b',' | b'}') && !b[*i].is_ascii_whitespace() {
            *i += 1;
        }
        String::from_utf8_lossy(&b[start..*i]).into_owned()
    };

    skip_ws(b, &mut i);
    if b.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    let mut map = HashMap::new();
    loop {
        skip_ws(b, &mut i);
        if b.get(i) == Some(&b'}') {
            return Some(map);
        }
        let key = parse_string(b, &mut i)?;
        skip_ws(b, &mut i);
        if b.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        skip_ws(b, &mut i);
        let value = if b.get(i) == Some(&b'"') {
            parse_string(b, &mut i)?
        } else {
            parse_bare(b, &mut i)
        };
        map.insert(key, value);
        skip_ws(b, &mut i);
        match b.get(i) {
            Some(&b',') => i += 1,
            Some(&b'}') => return Some(map),
            _ => return None,
        }
    }
}

/// Incrementally builds one flat JSON object line. Purely syntactic —
/// callers own field order (the journal relies on it for byte-stable
/// lines).
#[derive(Debug, Default)]
pub struct FlatJsonBuilder {
    buf: String,
}

impl FlatJsonBuilder {
    /// An empty object.
    pub fn new() -> Self {
        FlatJsonBuilder { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push('"');
        self.buf.push_str(&esc_json(key));
        self.buf.push_str("\":");
    }

    /// Appends a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&esc_json(value));
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends an f64 field in shortest-round-trip form (non-finite
    /// values quoted).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&f64_json(value));
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(&mut self) -> String {
        if self.buf.is_empty() {
            return "{}".to_string();
        }
        let mut out = std::mem::take(&mut self.buf);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_through_parser() {
        let line = FlatJsonBuilder::new()
            .str("op", "run")
            .str("quote", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("x", 0.1234567890123456)
            .f64("inf", f64::INFINITY)
            .finish();
        let m = parse_flat_json(&line).expect("parses");
        assert_eq!(m["op"], "run");
        assert_eq!(m["quote"], "a\"b\\c\nd");
        assert_eq!(m["n"], "42");
        assert_eq!(m["x"].parse::<f64>().unwrap(), 0.1234567890123456);
        assert_eq!(m["inf"], "inf");
    }

    #[test]
    fn empty_builder_is_an_empty_object() {
        assert_eq!(FlatJsonBuilder::new().finish(), "{}");
        assert!(parse_flat_json("{}").unwrap().is_empty());
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        for bad in ["", "{", "{\"a\":1", "[1]", "{\"a\"}", "{\"a\":\"b"] {
            assert!(parse_flat_json(bad).is_none(), "{bad:?}");
        }
    }
}
