//! The [`Engine`] trait: one uniform per-framework implementation of the
//! paper's four algorithms.
//!
//! Before this trait existed, `run_benchmark` held a 28-arm
//! `algorithm × framework` match; adding a framework meant touching four
//! match arms plus digest plumbing. Now each framework implements
//! [`Engine`] exactly once — `pagerank`, `bfs`, `triangles`, `cf`, each
//! returning the uniform `(digest, RunReport)` pair — and the runner
//! resolves it via [`Framework::engine`]. The digest is the
//! cross-framework sanity check of [`crate::runner::RunOutcome`]: sum of
//! ranks (PageRank), sum of finite distances (BFS), triangle count (TC),
//! training RMSE (CF).

use graphmaze_cluster::SimError;
use graphmaze_engines::datalog::socialite;
use graphmaze_engines::graphmat;
use graphmaze_engines::spmv::combblas;
use graphmaze_engines::taskpar::galois;
use graphmaze_engines::vertex::{giraph, graphlab};
use graphmaze_graph::csr::Csr;
use graphmaze_graph::{DirectedGraph, RatingsGraph, UndirectedGraph};
use graphmaze_metrics::RunReport;
use graphmaze_native::{bfs, cf, msbfs, pagerank, triangle, NativeOptions, PAGERANK_R};

use crate::runner::{BenchParams, Framework};

/// A framework's implementation of the paper's four algorithms, each
/// returning `(digest, RunReport)`.
pub trait Engine: Sync {
    /// Short name for reports (matches [`Framework::name`]).
    fn name(&self) -> &'static str;

    /// Iterative PageRank on the directed view; digest = Σ ranks.
    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError>;

    /// BFS from `source` on the symmetrized view; digest = Σ finite
    /// distances.
    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError>;

    /// Triangle counting on the DAG-oriented view; digest = count.
    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError>;

    /// Collaborative filtering on the bipartite ratings; digest =
    /// training RMSE.
    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError>;

    /// Bit-parallel multi-source BFS from `sources` on the symmetrized
    /// view; digest = Σ finite distances over all source rows. The
    /// default says the framework has no port — the word-level kernel
    /// does not fit every programming model — so the extended Table 5
    /// renders those cells "n/a".
    fn msbfs(
        &self,
        _g: &UndirectedGraph,
        _sources: &[u32],
        _nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        Err(SimError::InvalidConfig(format!(
            "{} has no multi-source BFS port",
            self.name()
        )))
    }
}

fn bfs_digest(dist: &[u32]) -> f64 {
    dist.iter()
        .filter(|&&d| d != u32::MAX)
        .map(|&d| f64::from(d))
        .sum()
}

fn msbfs_digest(rows: &[Vec<u32>]) -> f64 {
    rows.iter().map(|row| bfs_digest(row)).sum()
}

fn cf_rmse_flat(g: &RatingsGraph, p: &[f64], q: &[f64], k: usize) -> f64 {
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    let mut sse = 0.0;
    for (u, v, r) in g.triples() {
        let e = f64::from(r)
            - dot(
                &p[u as usize * k..(u as usize + 1) * k],
                &q[v as usize * k..(v as usize + 1) * k],
            );
        sse += e * e;
    }
    (sse / g.num_ratings().max(1) as f64).sqrt()
}

fn cf_rmse_rows(g: &RatingsGraph, rows: &[Vec<f64>]) -> f64 {
    let nu = g.num_users() as usize;
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
    let mut sse = 0.0;
    for (u, v, r) in g.triples() {
        let e = f64::from(r) - dot(&rows[u as usize], &rows[nu + v as usize]);
        sse += e * e;
    }
    (sse / g.num_ratings().max(1) as f64).sqrt()
}

/// Hand-optimized native code (the reference point).
pub struct NativeEngine;

impl Engine for NativeEngine {
    fn name(&self) -> &'static str {
        "native"
    }

    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (ranks, report) = pagerank::pagerank_cluster(
            g,
            PAGERANK_R,
            params.pr_iterations,
            NativeOptions::all(),
            nodes,
        )?;
        Ok((ranks.iter().sum(), report))
    }

    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (dist, report) = bfs::bfs_cluster(g, source, NativeOptions::all(), nodes)?;
        Ok((bfs_digest(&dist), report))
    }

    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (count, report) = triangle::triangles_cluster(g, NativeOptions::all(), nodes)?;
        Ok((count as f64, report))
    }

    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (_, hist, report) = cf::sgd_cluster(
            g,
            &params.cf,
            params.cf_iterations,
            NativeOptions::all(),
            nodes,
        )?;
        Ok((*hist.last().unwrap_or(&f64::NAN), report))
    }

    fn msbfs(
        &self,
        g: &UndirectedGraph,
        sources: &[u32],
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (rows, report) = msbfs::msbfs_cluster(g, sources, NativeOptions::all(), nodes)?;
        Ok((msbfs_digest(&rows), report))
    }
}

/// CombBLAS — sparse-matrix semirings, 2-D partitioning, MPI.
pub struct CombBlasEngine;

impl Engine for CombBlasEngine {
    fn name(&self) -> &'static str {
        "combblas"
    }

    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (ranks, report) = combblas::pagerank(g, PAGERANK_R, params.pr_iterations, nodes)?;
        Ok((ranks.iter().sum(), report))
    }

    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (dist, report) = combblas::bfs(g, source, nodes)?;
        Ok((bfs_digest(&dist), report))
    }

    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (count, report) = combblas::triangles(g, nodes)?;
        Ok((count as f64, report))
    }

    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let k = params.cf.k;
        let (p, q, report) = combblas::cf_gd(
            g,
            k,
            params.cf.lambda,
            params.cf.gamma0,
            params.cf_iterations,
            nodes,
        )?;
        Ok((cf_rmse_flat(g, &p, &q, k), report))
    }

    fn msbfs(
        &self,
        g: &UndirectedGraph,
        sources: &[u32],
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (rows, report) = combblas::msbfs(g, sources, nodes)?;
        Ok((msbfs_digest(&rows), report))
    }
}

/// GraphLab — vertex programs, sockets.
pub struct GraphLabEngine;

impl Engine for GraphLabEngine {
    fn name(&self) -> &'static str {
        "graphlab"
    }

    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (ranks, report) = graphlab::pagerank(g, PAGERANK_R, params.pr_iterations, nodes)?;
        Ok((ranks.iter().sum(), report))
    }

    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (dist, report) = graphlab::bfs(g, source, nodes)?;
        Ok((bfs_digest(&dist), report))
    }

    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (count, report) = graphlab::triangles(g, nodes)?;
        Ok((count as f64, report))
    }

    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (vals, report) = graphlab::cf_gd(
            g,
            params.cf.k,
            params.cf.lambda,
            params.cf.gamma0,
            params.cf_iterations,
            nodes,
        )?;
        Ok((cf_rmse_rows(g, &vals), report))
    }

    fn msbfs(
        &self,
        g: &UndirectedGraph,
        sources: &[u32],
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (rows, report) = graphlab::msbfs(g, sources, nodes)?;
        Ok((msbfs_digest(&rows), report))
    }
}

/// SociaLite — Datalog over sharded tables. `optimized` selects the
/// post-§6.1.3 network stack (Table 7 "After") vs the original one.
pub struct SociaLiteEngine {
    optimized: bool,
}

impl Engine for SociaLiteEngine {
    fn name(&self) -> &'static str {
        if self.optimized {
            "socialite"
        } else {
            "socialite-unopt"
        }
    }

    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (ranks, report) =
            socialite::pagerank(g, PAGERANK_R, params.pr_iterations, nodes, self.optimized)?;
        Ok((ranks.iter().sum(), report))
    }

    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (dist, report) = socialite::bfs(g, source, nodes, self.optimized)?;
        Ok((bfs_digest(&dist), report))
    }

    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (count, report) = socialite::triangles(g, nodes, self.optimized)?;
        Ok((count as f64, report))
    }

    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let k = params.cf.k;
        let (p, q, report) = socialite::cf_gd(
            g,
            k,
            params.cf.lambda,
            params.cf.gamma0,
            params.cf_iterations,
            nodes,
            self.optimized,
        )?;
        Ok((cf_rmse_flat(g, &p, &q, k), report))
    }
}

/// Giraph — Hadoop BSP vertex programs.
pub struct GiraphEngine;

impl Engine for GiraphEngine {
    fn name(&self) -> &'static str {
        "giraph"
    }

    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (ranks, report) = giraph::pagerank(g, PAGERANK_R, params.pr_iterations, nodes)?;
        Ok((ranks.iter().sum(), report))
    }

    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (dist, report) = giraph::bfs(g, source, nodes)?;
        Ok((bfs_digest(&dist), report))
    }

    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (count, report) = giraph::triangles_split(g, nodes, params.giraph_splits)?;
        Ok((count as f64, report))
    }

    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (vals, report) = giraph::cf_gd(
            g,
            params.cf.k,
            params.cf.lambda,
            params.cf.gamma0,
            params.cf_iterations,
            nodes,
            params.giraph_splits,
        )?;
        Ok((cf_rmse_rows(g, &vals), report))
    }

    fn msbfs(
        &self,
        g: &UndirectedGraph,
        sources: &[u32],
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (rows, report) = giraph::msbfs(g, sources, nodes)?;
        Ok((msbfs_digest(&rows), report))
    }
}

/// Galois — task-based, single node only.
pub struct GaloisEngine;

impl Engine for GaloisEngine {
    fn name(&self) -> &'static str {
        "galois"
    }

    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (ranks, report) = galois::pagerank(g, PAGERANK_R, params.pr_iterations, nodes)?;
        Ok((ranks.iter().sum(), report))
    }

    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (dist, report) = galois::bfs(g, source, nodes)?;
        Ok((bfs_digest(&dist), report))
    }

    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (count, report) = galois::triangles(g, nodes)?;
        Ok((count as f64, report))
    }

    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (_, hist, report) = galois::cf_sgd(g, &params.cf, params.cf_iterations, nodes)?;
        Ok((*hist.last().unwrap_or(&f64::NAN), report))
    }
}

/// GraphMat — vertex programs auto-lowered onto the masked-SpMSpV
/// backend; every algorithm below is the *same* `GasProgram` the vertex
/// engines run, compiled rather than re-implemented.
pub struct GraphMatEngine;

impl Engine for GraphMatEngine {
    fn name(&self) -> &'static str {
        "graphmat"
    }

    fn pagerank(
        &self,
        g: &DirectedGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (ranks, report) = graphmat::pagerank(g, PAGERANK_R, params.pr_iterations, nodes)?;
        Ok((ranks.iter().sum(), report))
    }

    fn bfs(
        &self,
        g: &UndirectedGraph,
        source: u32,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (dist, report) = graphmat::bfs(g, source, nodes)?;
        Ok((bfs_digest(&dist), report))
    }

    fn triangles(
        &self,
        g: &Csr,
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (count, report) = graphmat::triangles(g, nodes)?;
        Ok((count as f64, report))
    }

    fn cf(
        &self,
        g: &RatingsGraph,
        nodes: usize,
        params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (vals, report) = graphmat::cf_gd(
            g,
            params.cf.k,
            params.cf.lambda,
            params.cf.gamma0,
            params.cf_iterations,
            nodes,
        )?;
        Ok((cf_rmse_rows(g, &vals), report))
    }

    fn msbfs(
        &self,
        g: &UndirectedGraph,
        sources: &[u32],
        nodes: usize,
        _params: &BenchParams,
    ) -> Result<(f64, RunReport), SimError> {
        let (rows, report) = graphmat::msbfs(g, sources, nodes)?;
        Ok((msbfs_digest(&rows), report))
    }
}

static NATIVE: NativeEngine = NativeEngine;
static COMBBLAS: CombBlasEngine = CombBlasEngine;
static GRAPHLAB: GraphLabEngine = GraphLabEngine;
static SOCIALITE: SociaLiteEngine = SociaLiteEngine { optimized: true };
static SOCIALITE_UNOPT: SociaLiteEngine = SociaLiteEngine { optimized: false };
static GIRAPH: GiraphEngine = GiraphEngine;
static GALOIS: GaloisEngine = GaloisEngine;
static GRAPHMAT: GraphMatEngine = GraphMatEngine;

impl Framework {
    /// The framework's [`Engine`] implementation. This is the *only*
    /// per-framework dispatch point in the workspace.
    pub fn engine(&self) -> &'static dyn Engine {
        match self {
            Framework::Native => &NATIVE,
            Framework::CombBlas => &COMBBLAS,
            Framework::GraphLab => &GRAPHLAB,
            Framework::SociaLite => &SOCIALITE,
            Framework::SociaLiteUnopt => &SOCIALITE_UNOPT,
            Framework::Giraph => &GIRAPH,
            Framework::Galois => &GALOIS,
            Framework::GraphMat => &GRAPHMAT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_match_framework_names() {
        for fw in [
            Framework::Native,
            Framework::CombBlas,
            Framework::GraphLab,
            Framework::SociaLite,
            Framework::SociaLiteUnopt,
            Framework::Giraph,
            Framework::Galois,
            Framework::GraphMat,
        ] {
            assert_eq!(fw.engine().name(), fw.name());
        }
    }

    #[test]
    fn socialite_variants_differ_only_in_network_stack() {
        let wl = crate::Workload::rmat(8, 6, 5);
        let g = wl.directed.as_ref().unwrap();
        let params = BenchParams::default();
        let (d_opt, r_opt) = SOCIALITE.pagerank(g, 2, &params).unwrap();
        let (d_unopt, r_unopt) = SOCIALITE_UNOPT.pagerank(g, 2, &params).unwrap();
        assert_eq!(d_opt, d_unopt, "same answer either way");
        assert!(
            r_unopt.sim_seconds > r_opt.sim_seconds,
            "unoptimized network must be slower: {} vs {}",
            r_unopt.sim_seconds,
            r_opt.sim_seconds
        );
    }
}
