//! Social-network analysis on a LiveJournal-like graph — the workload
//! mix the paper's introduction motivates: influence ranking (PageRank),
//! degrees of separation (BFS) and community cohesion (triangles),
//! then a framework comparison on a simulated 4-node cluster.
//!
//! ```sh
//! cargo run --release --example social_network_analysis
//! ```

use graphmaze_core::prelude::*;
use graphmaze_core::report::{fmt_secs, fmt_slowdown};

fn main() {
    // The Table 3 LiveJournal stand-in, scaled down 2^9 for a laptop.
    let wl = Workload::from_dataset(Dataset::LiveJournalLike, 9, 2024);
    let g = wl.directed.as_ref().expect("graph");
    println!(
        "livejournal-like follower graph: {} users, {} follow edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    // --- influence ranking ---------------------------------------------
    let ranks = graphmaze_core::native::pagerank::pagerank(g, PAGERANK_R, 20, 0);
    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    println!("top 5 influencers by pagerank:");
    for &v in order.iter().take(5) {
        println!(
            "  user {v:>8}  rank {:>8.2}  followers {:>6}",
            ranks[v],
            g.inn.degree(v as u32)
        );
    }

    // --- degrees of separation ------------------------------------------
    let und = wl.undirected.as_ref().expect("graph");
    let src = order[0] as u32; // start from the top influencer
    let dist = graphmaze_core::native::bfs::bfs(und, src, 0);
    let mut histogram = std::collections::BTreeMap::new();
    for &d in dist.iter().filter(|&&d| d != u32::MAX) {
        *histogram.entry(d).or_insert(0u64) += 1;
    }
    println!("\ndegrees of separation from user {src}:");
    for (d, count) in &histogram {
        println!("  {d} hop(s): {count} users");
    }

    // --- community cohesion ----------------------------------------------
    let oriented = wl.oriented.as_ref().expect("graph");
    let tri = graphmaze_core::native::triangle::triangles(oriented, 0);
    let wedges: u64 = (0..und.num_vertices() as u32)
        .map(|v| {
            let d = u64::from(und.adj.degree(v));
            d * d.saturating_sub(1) / 2
        })
        .sum();
    println!(
        "\ntriangles: {tri} (global clustering coefficient {:.4})",
        if wedges > 0 {
            3.0 * tri as f64 / wedges as f64
        } else {
            0.0
        }
    );

    // --- the maze: same job, five frameworks, 4 nodes ---------------------
    println!("\npagerank time/iteration on a simulated 4-node cluster:");
    let params = BenchParams::default();
    let native =
        run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 4, &params).expect("native");
    for fw in Framework::ALL {
        let line = match run_benchmark(Algorithm::PageRank, fw, &wl, 4, &params) {
            Ok(out) => format!(
                "{}s/iter  ({}x native)",
                fmt_secs(out.report.seconds_per_iteration()),
                fmt_slowdown(out.report.slowdown_vs(&native.report))
            ),
            Err(e) => format!("n/a ({e})"),
        };
        println!("  {:<10} {line}", fw.name());
    }
}
