//! The paper in miniature: every algorithm under every framework on one
//! synthetic graph, single-node and 4-node, printed as slowdown tables —
//! a small-scale live rendition of Tables 5 and 6.
//!
//! ```sh
//! cargo run --release --example framework_shootout
//! ```

use graphmaze_core::prelude::*;
use graphmaze_core::report::fmt_slowdown;

fn shootout(nodes: usize, graph: &Workload, ratings: &Workload, params: &BenchParams) {
    println!("=== {nodes} node(s): slowdown vs native (lower is better) ===");
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let wl = if alg == Algorithm::CollaborativeFiltering {
            ratings
        } else {
            graph
        };
        let native =
            run_benchmark(alg, Framework::Native, wl, nodes, params).expect("native must run");
        let mut row = vec![alg.name().to_string()];
        for fw in Framework::ALL
            .into_iter()
            .filter(|f| *f != Framework::Native)
        {
            row.push(match run_benchmark(alg, fw, wl, nodes, params) {
                Ok(out) => fmt_slowdown(out.report.slowdown_vs(&native.report)),
                Err(_) => "n/a".to_string(),
            });
        }
        rows.push(row);
    }
    let headers = [
        "algorithm",
        "combblas",
        "graphlab",
        "socialite",
        "giraph",
        "galois",
    ];
    println!("{}", format_table(&headers, &rows));
}

fn main() {
    let graph = Workload::rmat(13, 16, 7);
    let ratings = Workload::rmat_ratings(12, 512, 7);
    let params = BenchParams::default();
    shootout(1, &graph, &ratings, &params);
    shootout(4, &graph, &ratings, &params);
    println!(
        "compare with the paper's Table 5 (single node) and Table 6 (multi node):\n\
         Galois near-native but single-node; CombBLAS strong except triangle\n\
         counting; GraphLab/SociaLite a small multiple off; Giraph 1-3 orders\n\
         of magnitude slower."
    );
}
