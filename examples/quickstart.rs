//! Quickstart: generate a Graph500 RMAT graph, run all four paper
//! algorithms natively, and print what the paper's Table 1 calls their
//! "diverse characteristics" in action.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphmaze_core::prelude::*;

fn main() {
    // A scale-14 RMAT graph (16 K vertices, ~260 K edges) — §4.1.2's
    // generator with Graph500 default parameters A=0.57, B=C=0.19.
    let wl = Workload::rmat(14, 16, 42);
    let directed = wl.directed.as_ref().expect("graph workload");
    println!(
        "graph `{}`: {} vertices, {} edges",
        wl.name,
        directed.num_vertices(),
        directed.num_edges()
    );

    // PageRank (eq. 1, r = 0.3), 10 iterations.
    let ranks = graphmaze_core::native::pagerank::pagerank(directed, PAGERANK_R, 10, 0);
    let (top_v, top_r) = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    println!("pagerank : highest-rank vertex {top_v} with rank {top_r:.2}");

    // BFS (eq. 2) from the highest-degree vertex (ids are scrambled, so
    // vertex 0 may be isolated).
    let undirected = wl.undirected.as_ref().expect("graph workload");
    let source = (0..undirected.num_vertices() as u32)
        .max_by_key(|&v| undirected.adj.degree(v))
        .unwrap();
    let dist = graphmaze_core::native::bfs::bfs(undirected, source, 0);
    let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
    let diameter = dist.iter().filter(|&&d| d != u32::MAX).max().unwrap();
    println!("bfs      : reached {reached} vertices, max distance {diameter}");

    // Triangle counting (eq. 3) on the DAG orientation.
    let oriented = wl.oriented.as_ref().expect("graph workload");
    let triangles = graphmaze_core::native::triangle::triangles(oriented, 0);
    println!("triangles: {triangles}");

    // Collaborative filtering (eq. 4–8): SGD on a synthetic power-law
    // ratings matrix from the paper's fold generator.
    let cf_wl = Workload::rmat_ratings(12, 256, 42);
    let ratings = cf_wl.ratings.as_ref().expect("ratings workload");
    let cfg = CfConfig {
        k: 16,
        lambda: 0.05,
        gamma0: 0.01,
        step_decay: 0.95,
        seed: 42,
    };
    let (_, history) = graphmaze_core::native::cf::sgd(ratings, &cfg, 5, 0);
    println!(
        "cf (sgd) : {} users x {} items, {} ratings; rmse {:.3} -> {:.3} in 5 epochs",
        ratings.num_users(),
        ratings.num_items(),
        ratings.num_ratings(),
        history[0],
        history[4],
    );

    // And the headline of the paper: the same algorithm, same data, on a
    // simulated 4-node cluster under two frameworks.
    let params = BenchParams::default();
    let native =
        run_benchmark(Algorithm::PageRank, Framework::Native, &wl, 4, &params).expect("native run");
    let giraph =
        run_benchmark(Algorithm::PageRank, Framework::Giraph, &wl, 4, &params).expect("giraph run");
    println!(
        "ninja gap: pagerank/iter native {:.4}s vs giraph {:.2}s  ({:.0}x)",
        native.report.seconds_per_iteration(),
        giraph.report.seconds_per_iteration(),
        giraph.report.slowdown_vs(&native.report),
    );
}
