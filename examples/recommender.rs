//! A movie recommender on a Netflix-like ratings matrix — the paper's
//! machine-learning workload (§2, eq. 4–8). Trains incomplete matrix
//! factorization by SGD, demonstrates the SGD-vs-GD convergence gap the
//! paper reports (§3.2: "SGD converges in about 40x fewer iterations"),
//! and produces recommendations.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use graphmaze_core::native::cf::{self, CfConfig};
use graphmaze_core::prelude::*;

fn main() {
    // Netflix stand-in (Table 3), scaled down 2^7.
    let wl = Workload::from_dataset(Dataset::NetflixLike, 8, 99);
    let ratings = wl.ratings.as_ref().expect("ratings");
    println!(
        "netflix-like ratings: {} users x {} movies, {} ratings (mean {:.2} stars)\n",
        ratings.num_users(),
        ratings.num_items(),
        ratings.num_ratings(),
        ratings.mean_rating()
    );

    // --- train with SGD ---------------------------------------------------
    let cfg = CfConfig {
        k: 32,
        lambda: 0.05,
        gamma0: 0.015,
        step_decay: 0.95,
        seed: 7,
    };
    let epochs = 12;
    let (factors, sgd_hist) = cf::sgd(ratings, &cfg, epochs, 0);
    println!("sgd training rmse per epoch:");
    for (i, r) in sgd_hist.iter().enumerate() {
        println!("  epoch {:>2}: {r:.4}", i + 1);
    }

    // --- the convergence gap ----------------------------------------------
    let mut gd_cfg = cfg;
    // GD sums gradients over all ratings before stepping; its largest
    // stable step shrinks with the heaviest user/item degree
    let max_deg = (0..ratings.num_users())
        .map(|u| ratings.user_degree(u))
        .chain((0..ratings.num_items()).map(|v| ratings.item_degree(v)))
        .max()
        .unwrap_or(1);
    gd_cfg.gamma0 = (0.5 / f64::from(max_deg)).min(0.002);
    let (_, gd_hist) = cf::gd(ratings, &gd_cfg, epochs, 0);
    let target = sgd_hist[2]; // what SGD reaches in 3 epochs
    let sgd_epochs = cf::epochs_to_reach(&sgd_hist, target).unwrap();
    match cf::epochs_to_reach(&gd_hist, target) {
        Some(g) => println!(
            "\nconvergence to rmse {target:.3}: sgd {sgd_epochs} epochs, gd {g} epochs ({}x)",
            g / sgd_epochs
        ),
        None => println!(
            "\nconvergence to rmse {target:.3}: sgd {sgd_epochs} epochs, gd did not reach it \
             in {epochs} (gd is at {:.3}) — the paper's ~40x gap",
            gd_hist.last().unwrap()
        ),
    }

    // --- recommend --------------------------------------------------------
    let user = (0..ratings.num_users())
        .max_by_key(|&u| ratings.user_degree(u))
        .expect("non-empty");
    let rated: std::collections::HashSet<u32> =
        ratings.ratings_of_user(user).map(|(v, _)| v).collect();
    let mut predictions: Vec<(u32, f64)> = (0..ratings.num_items())
        .filter(|v| !rated.contains(v))
        .map(|v| (v, factors.predict(user, v)))
        .collect();
    predictions.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\ntop 5 recommendations for the most active user (user {user}, {} ratings):",
        ratings.user_degree(user)
    );
    for (v, score) in predictions.iter().take(5) {
        println!("  movie {v:>6}  predicted {score:.2} stars");
    }

    // --- and the framework angle -------------------------------------------
    let params = BenchParams {
        cf: cfg,
        cf_iterations: 1,
        ..Default::default()
    };
    println!("\ncf time/iteration on a simulated 4-node cluster:");
    let native = run_benchmark(
        Algorithm::CollaborativeFiltering,
        Framework::Native,
        &wl,
        4,
        &params,
    )
    .expect("native");
    for fw in [
        Framework::Native,
        Framework::CombBlas,
        Framework::GraphLab,
        Framework::Giraph,
    ] {
        match run_benchmark(Algorithm::CollaborativeFiltering, fw, &wl, 4, &params) {
            Ok(out) => println!(
                "  {:<10} {:>10.4}s/iter ({:.1}x)",
                fw.name(),
                out.report.seconds_per_iteration(),
                out.report.slowdown_vs(&native.report)
            ),
            Err(e) => println!("  {:<10} failed: {e}", fw.name()),
        }
    }
}
